"""Persistence layer: an append-only JSONL run store with resume support.

Every completed cell of a campaign is appended as one JSON line keyed by
the cell's content hash (:meth:`~repro.campaign.spec.RunSpec.run_key`),
together with its output row, the full serialized
:class:`~repro.core.results.MSTRunResult` and a provenance stamp
(package version, engine, seed, executor).  Re-running a campaign
against the same store skips every cell whose key is already present --
the resume semantics the ``repro-mst sweep --resume`` flag exposes.

The store also caches *instance descriptions* (n, m, hop-diameter) per
graph-spec hash, so expensive ``hop_diameter`` computations happen once
per distinct graph across all campaigns sharing the store, not once per
cell.

A store constructed with ``path=None`` is purely in-memory; the legacy
experiment runners use that mode so they stay side-effect free.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..core.results import MSTRunResult
from ..exceptions import ConfigurationError
from .spec import RunSpec

#: One instance description: {"n": int, "m": int, "D": int (optional)}.
GraphDescription = Dict[str, object]


class RunStore:
    """Content-addressed storage for campaign cells (JSONL on disk).

    Records are one of two kinds::

        {"kind": "run",   "key": <run_key>,   "spec": ..., "row": ...,
         "result": ..., "provenance": ...}
        {"kind": "graph", "key": <graph_key>, "description": {...}}

    The file is append-only; on load, the last record per key wins, so
    overwriting a cell is just appending a fresh record.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._runs: Dict[str, Dict[str, object]] = {}
        self._graphs: Dict[str, GraphDescription] = {}
        if self.path is not None and self.path.exists():
            self._load()

    # -- loading ---------------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ConfigurationError(
                        f"{self.path}:{line_number}: corrupt run-store line ({error})"
                    ) from error
                kind = record.get("kind")
                if kind == "run":
                    self._runs[str(record["key"])] = record
                elif kind == "graph":
                    self._graphs[str(record["key"])] = dict(record["description"])
                else:
                    raise ConfigurationError(
                        f"{self.path}:{line_number}: unknown record kind {kind!r}"
                    )

    def _append(self, record: Dict[str, object]) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            # No sort_keys: records are built in deterministic order, and
            # preserving row insertion order keeps table columns stable
            # when rows are reloaded on resume.
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- run records -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._runs)

    def __contains__(self, key: str) -> bool:
        return key in self._runs

    def has_run(self, key: str) -> bool:
        return key in self._runs

    def run_keys(self) -> List[str]:
        return list(self._runs)

    def get_row(self, key: str) -> Dict[str, object]:
        """The flat output row recorded for ``key`` (KeyError if absent)."""
        return dict(self._runs[key]["row"])

    def get_result(self, key: str) -> MSTRunResult:
        """The full deserialized result recorded for ``key``."""
        return MSTRunResult.from_json_dict(self._runs[key]["result"])

    def get_spec(self, key: str) -> RunSpec:
        return RunSpec.from_json_dict(self._runs[key]["spec"])

    def get_provenance(self, key: str) -> Dict[str, object]:
        return dict(self._runs[key]["provenance"])

    def record_run(
        self,
        spec: RunSpec,
        row: Dict[str, object],
        result_json: Dict[str, object],
        provenance: Dict[str, object],
    ) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": "run",
            "key": spec.run_key(),
            "spec": spec.to_json_dict(),
            # Copied: callers may decorate their returned rows with
            # presentation columns; the store must not see those.
            "row": dict(row),
            "result": result_json,
            "provenance": provenance,
        }
        self._runs[str(record["key"])] = record
        self._append(record)
        return record

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """All recorded rows, in insertion (file) order."""
        for record in self._runs.values():
            yield dict(record["row"])

    # -- graph description cache ----------------------------------------

    def graph_description(self, key: str) -> Optional[GraphDescription]:
        description = self._graphs.get(key)
        return dict(description) if description is not None else None

    def record_graph(self, key: str, description: GraphDescription) -> None:
        self._graphs[key] = dict(description)
        self._append({"kind": "graph", "key": key, "description": dict(description)})

    def graph_keys(self) -> List[str]:
        return list(self._graphs)
