"""Execution layer: serial, multiprocessing and batched campaign executors.

Every execution mode drives each cell through the same single-cell
contract (:func:`repro.analysis.experiments.run_single`), so all of them
produce *row-for-row identical* output -- the mode only changes
wall-clock time:

* serial (``jobs=1, batch=False``): one cell at a time, in-process;
* legacy pool (``jobs>1, batch=False``): a process pool created once
  per campaign and shared by the describe and run passes; graphs are
  constructed inside the worker that runs the cell (specs are data, so
  nothing heavyweight crosses process boundaries);
* batched (``jobs=1``, the default): the in-process
  :class:`_BatchRunner` packs every distinct deterministic graph of the
  sweep into one :class:`~repro.simulator.fast_network.BatchedEngine`
  arena, builds each graph and each verification oracle once instead of
  once per cell, and steps through the cells re-using arena lanes;
* batched-parallel (``jobs>1``, the default): the
  :mod:`~repro.campaign.scheduler` leases graph-affine work units to
  persistent worker processes, each running the batch runner locally
  and committing to a worker-local shard store that is folded back
  into the campaign store.

Results are committed to the run store in deterministic campaign order,
and instance descriptions (n, m, hop-diameter) are computed once per
distinct graph and cached in the store.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..analysis.bounds import elkin_message_bound_formula, elkin_time_bound_formula
from ..analysis.experiments import run_single
from ..core.results import MSTRunResult
from ..exceptions import ConfigurationError, NonTerminationError
from ..graphs.properties import hop_diameter
from ..simulator.array_network import ArrayNetwork
from ..simulator.engine import engine_provider, registered_factory
from ..simulator.fast_network import BatchedEngine, FastNetwork
from ..types import CostReport

#: Kernels the batch runner can vend arena lanes for, and the stock
#: class each name must still resolve to for lanes to be safe (the
#: "array" entry additionally requires numpy -- without it the name is
#: simply not registered, so the identity check fails closed).
_LANE_KERNELS = {"fast": FastNetwork, "array": ArrayNetwork}
from .spec import Campaign, RunSpec
from .store import GraphDescription, RunStore

#: One flat output row (column name -> JSON-safe value).
Row = Dict[str, object]


def _describe_graph(graph, compute_diameter: bool) -> GraphDescription:
    description: GraphDescription = {
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
    }
    if compute_diameter:
        description["D"] = hop_diameter(graph)
    return description


def describe_instance(spec: RunSpec, compute_diameter: bool = True) -> GraphDescription:
    """Instance description (n, m and optionally hop-diameter) for a spec."""
    return _describe_graph(spec.build_graph(), compute_diameter)


def _build_row(spec: RunSpec, description: GraphDescription, result: MSTRunResult) -> Row:
    """Assemble the flat output row for one completed cell.

    The column set is a superset of what the legacy experiment runners
    produced, adding ``engine`` and ``seed`` for provenance and the
    theorem-bound ratio columns for the paper's algorithm.  Conditioned
    cells additionally carry the condition label/key, a ``status``
    column (``"ok"`` / ``"non-terminated"``) and the observed-fault
    telemetry; unconditioned rows keep the exact pre-existing column
    set, so old stores and row hashes stay comparable.
    """
    row: Row = {"graph": spec.display_label()}
    row.update(description)
    row.update(
        {
            "algorithm": spec.algorithm,
            "bandwidth": spec.bandwidth,
            "engine": spec.engine,
            "seed": spec.seed,
            "k": result.details.get("k"),
            "rounds": result.rounds,
            "messages": result.messages,
            "weight": round(result.total_weight, 6),
        }
    )
    condition = spec.condition
    non_terminated = bool(result.details.get("non_terminated"))
    if condition is not None:
        telemetry = result.details.get("condition") or {}
        row.update(
            {
                "condition": condition.label(),
                "condition_key": condition.key(),
                "status": "non-terminated" if non_terminated else "ok",
                "dropped": telemetry.get("dropped", 0),
                "delayed": telemetry.get("delayed", 0),
                "retransmits": telemetry.get("retransmits", 0),
                "crash_omissions": telemetry.get("crash_omissions", 0),
            }
        )
        if non_terminated:
            row["round_cap"] = result.details.get("round_cap")
    if spec.algorithm == "elkin" and not non_terminated:
        diameter = int(row.get("D", result.details.get("bfs_depth", 0)))
        # Degradation mode: a conditioned run is audited against the
        # condition-stretched bounds (see verify.complexity_checks), so
        # the ratio columns never flag fault-model artifacts.
        time_stretch = 1.0 if condition is None else condition.time_stretch()
        message_stretch = 1.0 if condition is None else condition.message_stretch()
        time_bound = (
            elkin_time_bound_formula(result.n, diameter, spec.bandwidth) * time_stretch
        )
        message_bound = elkin_message_bound_formula(result.n, result.m) * message_stretch
        row.update(
            {
                "round_bound": round(time_bound),
                "round_ratio": round(result.rounds / time_bound, 3),
                "message_bound": round(message_bound),
                "message_ratio": round(result.messages / message_bound, 3),
            }
        )
    return row


def _non_terminated_result(
    spec: RunSpec, graph: nx.Graph, error: NonTerminationError
) -> MSTRunResult:
    """Synthetic result recording a condition-induced non-termination.

    The cell produced no tree; the row still needs to exist (with the
    round cap and partial costs) so sweeps over crash schedules resume
    and report deterministically instead of hanging or dying.
    """
    return MSTRunResult(
        algorithm=spec.algorithm,
        edges=set(),
        total_weight=0.0,
        cost=CostReport(
            rounds=error.rounds or 0,
            messages=error.messages or 0,
            words=error.words or 0,
        ),
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        bandwidth=spec.bandwidth,
        details={
            "non_terminated": True,
            "round_cap": error.round_cap,
            "condition": getattr(error, "condition_telemetry", None),
            "error": str(error),
            **({} if spec.seed is None else {"seed": spec.seed}),
        },
    )


def run_spec(
    spec: RunSpec,
    description: Optional[GraphDescription] = None,
    verify: bool = True,
    compute_diameter: bool = True,
) -> Tuple[Row, MSTRunResult]:
    """Run one cell: build the graph, simulate, verify, build the row.

    Delegates the single-execution contract (RunConfig assembly, seed
    provenance, deferred verification) to
    :func:`repro.analysis.experiments.run_single` so campaign cells and
    direct calls can never diverge.
    """
    graph = spec.build_graph()
    if description is None:
        description = _describe_graph(graph, compute_diameter)
    try:
        result = run_single(
            graph,
            algorithm=spec.algorithm,
            bandwidth=spec.bandwidth,
            verify=verify,
            base_forest_k=spec.base_forest_k,
            engine=spec.engine,
            seed=spec.seed,
            collect_telemetry=spec.collect_telemetry,
            strict_bounds=spec.strict_bounds,
            condition=spec.condition,
        )
    except NonTerminationError as error:
        if spec.condition is None:
            raise
        result = _non_terminated_result(spec, graph, error)
    return _build_row(spec, description, result), result


class _BatchRunner:
    """In-process batched cell runner (the ``batch=True`` execution path).

    Serial per-cell execution rebuilds the graph, the engine and the
    verification references for every cell.  The batch runner hoists all
    of that to per-distinct-graph cost:

    * every distinct *deterministic* graph of the pending cells is built
      exactly once and packed into one
      :class:`~repro.simulator.fast_network.BatchedEngine` arena;
    * cells running on the stock ``"fast"`` or ``"array"`` kernels
      receive an arena lane through the
      :func:`~repro.simulator.engine.engine_provider` seam
      (byte-identical semantics; the lane *is* a ``FastNetwork`` /
      ``ArrayNetwork``);
    * verification runs against one cached
      :class:`~repro.verify.mst_checks.MSTOracle` per graph instead of
      recomputing three reference MSTs per cell;
    * instance descriptions are computed once per graph.

    Non-deterministic cells (no pinned seed) keep the serial contract:
    a fresh graph per cell, described and verified individually, so
    their rows remain self-consistent samples.  Cells on other engines
    still share graphs, oracles and descriptions -- only the lane
    hand-out is kernel-specific.
    """

    def __init__(
        self,
        pending: Sequence[Tuple[int, RunSpec, str]],
        do_verify: bool,
        compute_diameter: bool,
    ) -> None:
        self._do_verify = do_verify
        self._compute_diameter = compute_diameter
        self._graphs: Dict[str, nx.Graph] = {}
        self._oracles: Dict[str, object] = {}
        self._planted: Dict[str, object] = {}
        self._descriptions: Dict[str, GraphDescription] = {}
        # Only graphs some simulated fast-engine cell will run on are
        # worth packing into the arena: sequential references never
        # construct an engine, so packing their graphs would be pure
        # construction overhead.
        from ..algorithms import algorithm_info

        arena_keys: Set[str] = set()
        for _, spec, _ in pending:
            graph_key = spec.graph_key()
            if spec.is_deterministic() and graph_key not in self._graphs:
                self._graphs[graph_key] = spec.build_graph()
            if spec.engine in _LANE_KERNELS and algorithm_info(spec.algorithm).is_distributed:
                arena_keys.add(graph_key)
        self._arena = BatchedEngine(
            (
                graph
                for graph_key, graph in self._graphs.items()
                if graph_key in arena_keys
            ),
            validate=False,
        )
        # Lanes replace create_engine("fast") / create_engine("array")
        # calls; if a test or plugin re-registered a name with a
        # different kernel (or numpy is absent, leaving "array"
        # unregistered), stand down for that name and let its cells
        # construct their engines normally.
        self._lane_engines = {
            name
            for name, stock in _LANE_KERNELS.items()
            if registered_factory(name) is stock
        }

    def _provider(self, graph: nx.Graph):
        """An engine provider vending ``graph``'s arena lane exactly once.

        One cell runs one simulation on one engine; if an algorithm ever
        asked for a second engine mid-run, handing the (reset) lane out
        again would wipe the first engine's state, so subsequent
        requests fall through to normal construction instead.
        """
        vended: Set[int] = set()

        def provider(candidate: nx.Graph, bandwidth: int, engine_name: str):
            if (
                engine_name not in self._lane_engines
                or candidate is not graph
                # repro: allow[DET204] identity guard on a live object, never emitted
                or id(candidate) in vended
                or not self._arena.has_graph(candidate)
            ):
                return None
            # repro: allow[DET204] identity guard on a live object, never emitted
            vended.add(id(candidate))
            if engine_name == "array":
                return self._arena.array_lane(candidate, bandwidth)
            return self._arena.lane(candidate, bandwidth)

        return provider

    def run(
        self,
        index: int,
        spec: RunSpec,
        description: Optional[GraphDescription],
    ) -> Tuple[int, Row, Dict[str, object], GraphDescription]:
        """Run one cell; same outcome contract as :func:`_run_worker`."""
        deterministic = spec.is_deterministic()
        graph_key = spec.graph_key()
        graph = self._graphs.get(graph_key) if deterministic else None
        if graph is None:
            graph = spec.build_graph()
        if description is None and deterministic:
            description = self._descriptions.get(graph_key)
        if description is None:
            description = _describe_graph(graph, self._compute_diameter)
            if deterministic:
                self._descriptions[graph_key] = description
        try:
            if spec.engine in self._lane_engines and deterministic:
                with engine_provider(self._provider(graph)):
                    result = self._simulate(graph, spec)
            else:
                result = self._simulate(graph, spec)
        except NonTerminationError as error:
            if spec.condition is None:
                raise
            result = _non_terminated_result(spec, graph, error)
        if self._do_verify and not result.details.get("non_terminated"):
            oracle = self._oracles.get(graph_key) if deterministic else None
            if oracle is None:
                from ..verify.mst_checks import MSTOracle

                oracle = MSTOracle(graph)
                if deterministic:
                    self._oracles[graph_key] = oracle
            oracle.verify(result)
            from ..verify.planted_checks import (
                assert_matches_planted_mst,
                planted_mst_edges,
            )

            # Planted ground truth, extracted (and validated) once per
            # distinct graph like the oracle above.
            if deterministic and graph_key in self._planted:
                planted = self._planted[graph_key]
            else:
                planted = planted_mst_edges(graph)
                if deterministic:
                    self._planted[graph_key] = planted
            if planted is not None:
                assert_matches_planted_mst(graph, result, expected=planted)
        row = _build_row(spec, description, result)
        used = {key: row[key] for key in ("n", "m", "D") if key in row}
        return index, row, result.to_json_dict(), used

    def _simulate(self, graph: nx.Graph, spec: RunSpec) -> MSTRunResult:
        # verify=False: verification runs against the cached per-graph
        # oracle above, with exactly the checks run_single would apply.
        return run_single(
            graph,
            algorithm=spec.algorithm,
            bandwidth=spec.bandwidth,
            verify=False,
            base_forest_k=spec.base_forest_k,
            engine=spec.engine,
            seed=spec.seed,
            collect_telemetry=spec.collect_telemetry,
            strict_bounds=spec.strict_bounds,
            condition=spec.condition,
        )


# -- picklable worker entry points (top level for multiprocessing) -------


def _describe_worker(
    payload: Tuple[str, Dict[str, object], bool],
) -> Tuple[str, GraphDescription]:
    graph_key, spec_json, compute_diameter = payload
    spec = RunSpec.from_json_dict(spec_json)
    return graph_key, describe_instance(spec, compute_diameter=compute_diameter)


def _run_worker(
    payload: Tuple[int, Dict[str, object], Optional[GraphDescription], bool, bool],
) -> Tuple[int, Row, Dict[str, object], GraphDescription]:
    index, spec_json, description, verify, compute_diameter = payload
    spec = RunSpec.from_json_dict(spec_json)
    row, result = run_spec(
        spec, description=description, verify=verify, compute_diameter=compute_diameter
    )
    used = {key: row[key] for key in ("n", "m", "D") if key in row}
    return index, row, result.to_json_dict(), used


def _map_payloads(worker, payloads: Sequence[object], jobs: int, pool=None) -> List[object]:
    """Run ``worker`` over payloads, serially or on the campaign's pool.

    The pool, when one is passed, was created once by
    :func:`execute_campaign` and is shared by the describe and run
    passes -- one worker lifecycle per campaign, not one per phase.
    ``chunksize=1`` keeps scheduling deterministic-agnostic: results are
    returned in payload order either way, so output never depends on
    which worker finished first.
    """
    if pool is None or jobs <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    return pool.map(worker, payloads, chunksize=1)


def _notify(observers: Sequence[object], method: str, *args: object) -> None:
    """Dispatch a lifecycle event to every observer implementing it.

    Observers follow the :class:`repro.api.hooks.RunObserver` protocol
    (``on_run_start`` / ``on_phase`` / ``on_result``); each method is
    optional, so plain objects implementing a subset work too.  The
    executor duck-types the dispatch to stay importable without the api
    layer.
    """
    for observer in observers:
        hook = getattr(observer, method, None)
        if hook is not None:
            hook(*args)


def _provenance(spec: RunSpec, executor: str, verified: bool) -> Dict[str, object]:
    from .. import __version__

    return {
        "package_version": __version__,
        "algorithm": spec.algorithm,
        "engine": spec.engine,
        "seed": spec.seed,
        "executor": executor,
        "verified": verified,
        # Non-deterministic cells (no pinned seed) record *a* sample;
        # resuming them replays that sample rather than a fresh draw.
        "deterministic": spec.is_deterministic(),
    }


@dataclass
class CampaignReport:
    """Outcome of one :func:`execute_campaign` call.

    Attributes:
        campaign: the campaign that was executed.
        rows: one flat row per cell, in campaign (grid) order --
            regardless of which cells were freshly simulated and which
            were reused from the store.
        executed: number of cells simulated by this call.
        reused: number of cells skipped because the store already held
            their run key (resume).
        described: number of instance descriptions computed by this
            call (cache misses of the graph-description cache).
        reused_indexes: campaign indexes of the cells answered from the
            store (sorted); ``reused == len(reused_indexes)``.
        store: the run store the campaign was executed against.
        workers: persistent worker processes used by the batched-parallel
            scheduler (``0`` for in-process and legacy pool execution).
        worker_stats: one dict per scheduler worker -- ``worker``,
            ``units`` and ``cells`` executed, ``busy_seconds``, and
            ``utilization`` (busy time over campaign wall time).
    """

    campaign: Campaign
    rows: List[Row] = field(default_factory=list)
    executed: int = 0
    reused: int = 0
    described: int = 0
    reused_indexes: List[int] = field(default_factory=list)
    store: Optional[RunStore] = None
    workers: int = 0
    worker_stats: List[Dict[str, object]] = field(default_factory=list)

    def summary(self) -> str:
        text = (
            f"campaign {self.campaign.name!r}: {len(self.rows)} cells "
            f"({self.executed} executed, {self.reused} reused)"
        )
        if self.workers:
            utilization = ", ".join(
                f"w{stat['worker']} {float(stat['utilization']):.0%}"
                for stat in self.worker_stats
            )
            text += f" on {self.workers} workers ({utilization})"
        return text


def execute_campaign(
    campaign: Campaign,
    store: Optional[RunStore] = None,
    jobs: int = 1,
    resume: bool = True,
    verify: Optional[bool] = None,
    compute_diameter: bool = True,
    observers: Sequence[object] = (),
    batch: Optional[bool] = None,
) -> CampaignReport:
    """Execute every cell of ``campaign`` and return the ordered rows.

    Args:
        campaign: the grid to run.
        store: run store for persistence and resume; ``None`` uses a
            fresh in-memory store (everything is recomputed).
        jobs: worker processes; ``1`` runs in-process.  Every parallel
            path produces rows identical to the in-process one.
        resume: when True (the default), cells whose run key is already
            in the store are *not* re-simulated; their stored rows are
            returned in place.  When False every cell is re-run and the
            store records are overwritten.
        verify: override of ``campaign.verify`` (checks every MST
            against the sequential oracle inside the worker).
        compute_diameter: include the hop-diameter ``D`` in instance
            descriptions (the one expensive description field).
        observers: lifecycle hooks (see
            :class:`repro.api.hooks.RunObserver`).  In-process execution
            interleaves events with the cells; the batched-parallel
            scheduler streams every event live, in completion order; the
            legacy pool fires every ``on_run_start`` at dispatch time
            and the ``on_phase`` / ``on_result`` events in campaign
            order once the pool drains.  Resumed cells fire no events.
        batch: batched execution (see :class:`_BatchRunner`): distinct
            graphs are built, described, packed into one
            :class:`~repro.simulator.fast_network.BatchedEngine` arena
            and verified against one cached oracle each -- several times
            faster on many-small-cell sweeps, with rows byte-identical
            to the per-cell path.  With ``jobs > 1`` batching composes
            with multiprocessing: the :mod:`~repro.campaign.scheduler`
            leases graph-affine work units to persistent workers, each
            batching its units locally.  ``None`` (the default) batches
            everywhere; ``False`` forces the per-cell paths (serial, or
            the legacy process pool when ``jobs > 1``).
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    store = store if store is not None else RunStore(None)
    do_verify = campaign.verify if verify is None else verify

    keys = campaign.run_keys()
    pending: List[Tuple[int, RunSpec, str]] = []
    reused_keys: Dict[int, str] = {}
    for index, (spec, key) in enumerate(zip(campaign.specs, keys)):
        # A stored cell satisfies this call only if it was verified at
        # least as strongly: when this sweep wants verification, an
        # unverified record (e.g. from an earlier --no-verify run) is
        # re-simulated rather than silently replayed.
        reusable = (
            resume
            and store.has_run(key)
            and (not do_verify or store.get_provenance(key).get("verified", False))
        )
        if reusable:
            reused_keys[index] = key
        else:
            pending.append((index, spec, key))

    # Instance descriptions, computed once per distinct graph.  Only
    # deterministic specs (pinned seed or verbatim edge list) may share
    # a description across cells or reuse the store cache; every other
    # cell derives its description inside the run worker from the very
    # graph it simulates, so rows are always self-consistent.  A cached
    # description computed without the hop-diameter does not satisfy a
    # compute_diameter=True sweep -- it is recomputed and overwritten.
    def _usable(cached: Optional[GraphDescription]) -> bool:
        return cached is not None and (not compute_diameter or "D" in cached)

    # Pending cells run in-process (one at a time) unless a pool is both
    # requested and worthwhile; execution batches by default, composing
    # with multiprocessing through the graph-affine scheduler.
    in_process = jobs <= 1 or len(pending) <= 1
    use_batch = in_process and batch is not False and bool(pending)
    use_scheduler = not in_process and batch is not False

    described = 0
    descriptions: Dict[str, GraphDescription] = {}
    describe_payloads: List[Tuple[str, Dict[str, object], bool]] = []
    if pending:
        groups: Dict[str, List[RunSpec]] = {}
        for _, spec, _ in pending:
            groups.setdefault(spec.graph_key(), []).append(spec)
        for graph_key, members in groups.items():
            if not members[0].is_deterministic():
                continue
            cached = store.graph_description(graph_key)
            if _usable(cached):
                descriptions[graph_key] = cached
            elif len(members) > 1 and not use_batch and not use_scheduler:
                # Worth a dedicated pass: one description serves many
                # cells.  The batch runner -- in-process or inside a
                # scheduler worker -- instead describes the graph it
                # already built, so those paths never take this pass.
                describe_payloads.append(
                    (graph_key, members[0].to_json_dict(), compute_diameter)
                )
            # Single-cell graphs: the run worker describes the graph it
            # builds anyway; the result is recorded into the cache below.

    def _record_description(spec: RunSpec, used: GraphDescription) -> bool:
        """Cache a description a run produced; True when it was news."""
        graph_key = spec.graph_key()
        if (
            spec.is_deterministic()
            and graph_key not in descriptions
            and not _usable(store.graph_description(graph_key))
        ):
            store.record_graph(graph_key, used)
            descriptions[graph_key] = used
            return True
        return False

    # Simulate the pending cells (graphs are built inside each worker).
    if use_batch:
        executor_name = "batched"
    elif use_scheduler:
        executor_name = f"batched-pool-{jobs}"
    else:
        executor_name = "serial" if jobs <= 1 else f"pool-{jobs}"
    fresh: Dict[int, Row] = {}
    workers = 0
    worker_stats: List[Dict[str, object]] = []
    pool = None
    try:
        if not in_process and not use_scheduler:
            # One worker lifecycle per campaign: the legacy pool path
            # shares this pool across the describe and run passes
            # instead of spawning a throwaway pool for each phase.
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
            pool = multiprocessing.get_context(method).Pool(
                processes=min(jobs, len(pending))
            )
        for graph_key, description in _map_payloads(
            _describe_worker, describe_payloads, jobs, pool=pool
        ):
            store.record_graph(graph_key, description)
            descriptions[graph_key] = description
            described += 1
        if use_scheduler:
            from .scheduler import run_scheduled

            fresh, described_in_units, workers, worker_stats = run_scheduled(
                pending,
                descriptions,
                store,
                jobs=jobs,
                executor_name=executor_name,
                do_verify=do_verify,
                compute_diameter=compute_diameter,
                observers=observers,
                record_description=_record_description,
            )
            described += described_in_units
        else:
            # The batch runner consumes specs directly; only the worker
            # path needs the JSON form (it crosses a process boundary).
            payloads = [
                (
                    index,
                    None if use_batch else spec.to_json_dict(),
                    descriptions.get(spec.graph_key()),
                    do_verify,
                    compute_diameter,
                )
                for index, spec, _ in pending
            ]
            runner = (
                _BatchRunner(pending, do_verify, compute_diameter) if use_batch else None
            )
            if in_process:
                # Run inline below so observers see each cell's events live.
                outcomes: List[object] = [None] * len(payloads)
            else:
                for _, spec, _ in pending:
                    _notify(observers, "on_run_start", spec)
                outcomes = _map_payloads(_run_worker, payloads, jobs, pool=pool)
            for (index, spec, _), payload, outcome in zip(pending, payloads, outcomes):
                if in_process:
                    _notify(observers, "on_run_start", spec)
                    outcome = (
                        runner.run(index, spec, payload[2])
                        if runner is not None
                        else _run_worker(payload)
                    )
                out_index, row, result_json, used = outcome
                assert index == out_index
                if _record_description(spec, used):
                    described += 1
                store.record_run(
                    spec, row, result_json, _provenance(spec, executor_name, do_verify)
                )
                fresh[index] = row
                if observers:
                    result = MSTRunResult.from_json_dict(result_json)
                    for phase in result.phases:
                        _notify(observers, "on_phase", spec, phase)
                    _notify(observers, "on_result", spec, result, row)
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
        # Group-commit contract: whatever durability level the store
        # runs at, a campaign that returned has all of its records on
        # disk -- and one that *raised* (verification failure, Ctrl-C,
        # a dead scheduler worker) still persists every completed cell,
        # exactly as the v1 per-record store did, so --resume re-runs
        # nothing finished.
        store.flush()
    rows = [
        fresh[index] if index in fresh else store.get_row(reused_keys[index])
        for index in range(len(campaign.specs))
    ]
    return CampaignReport(
        campaign=campaign,
        rows=rows,
        executed=len(fresh),
        reused=len(reused_keys),
        described=described,
        reused_indexes=sorted(reused_keys),
        store=store,
        workers=workers,
        worker_stats=worker_stats,
    )
