"""Structural checks on MST forests (the invariants of Section 4).

Controlled-GHS promises an ``(n/k, O(k))``-MST forest; these helpers make
the promise testable with explicit constants:

* every fragment is a connected subtree of the graph whose edges all
  belong to the unique MST (so the forest really is an *MST* forest);
* fragments are vertex-disjoint and cover every vertex;
* the fragment count is at most ``ALPHA_CONSTANT * n / k`` and every
  strong diameter is at most ``BETA_CONSTANT * k`` (the constants follow
  from Lemmas 4.1 and 4.2: sizes at least ``2^{t-1} >= k/2`` give at most
  ``2n/k`` fragments, and diameters at most ``6 * 2^t <= 12k``; we keep a
  factor-two slack on the count for the final partial phase).
"""

from __future__ import annotations

import networkx as nx

from ..core.fragments import MSTForest
from ..exceptions import VerificationError
from ..types import normalize_edge
from .mst_checks import reference_mst

#: Fragment-count constant: |F| <= ALPHA_CONSTANT * n / k.
ALPHA_CONSTANT = 4.0
#: Fragment-diameter constant: Diam(F) <= BETA_CONSTANT * k.
BETA_CONSTANT = 12.0


def assert_valid_mst_forest(graph: nx.Graph, forest: MSTForest) -> None:
    """Raise unless ``forest`` is a vertex-disjoint cover by graph subtrees."""
    forest.assert_covers(graph.nodes())
    for fragment_id, fragment in forest.fragments.items():
        for u, v in fragment.tree_edges():
            if not graph.has_edge(u, v):
                raise VerificationError(
                    f"fragment {fragment_id} uses ({u}, {v}) which is not a graph edge"
                )


def assert_fragments_are_mst_subtrees(graph: nx.Graph, forest: MSTForest) -> None:
    """Raise unless every fragment tree edge belongs to the unique MST."""
    assert_valid_mst_forest(graph, forest)
    mst_edges = reference_mst(graph)
    for fragment_id, fragment in forest.fragments.items():
        foreign = [edge for edge in fragment.tree_edges() if edge not in mst_edges]
        if foreign:
            raise VerificationError(
                f"fragment {fragment_id} contains {len(foreign)} non-MST edges, e.g. {foreign[0]}"
            )


def assert_alpha_beta_forest(
    graph: nx.Graph,
    forest: MSTForest,
    k: int,
    alpha_constant: float = ALPHA_CONSTANT,
    beta_constant: float = BETA_CONSTANT,
) -> None:
    """Raise unless ``forest`` is an (alpha * n/k, beta * k)-MST forest.

    ``k = 1`` is allowed (the forest of singletons trivially qualifies).
    """
    n = graph.number_of_nodes()
    if k < 1:
        raise VerificationError(f"k must be >= 1, got {k}")
    assert_fragments_are_mst_subtrees(graph, forest)
    max_fragments = max(1.0, alpha_constant * n / k)
    if forest.count > max_fragments:
        raise VerificationError(
            f"forest has {forest.count} fragments, exceeding the bound "
            f"{alpha_constant} * n / k = {max_fragments:.1f} (n={n}, k={k})"
        )
    max_diameter = beta_constant * k
    worst = forest.max_diameter()
    if worst > max_diameter:
        raise VerificationError(
            f"a fragment has strong diameter {worst}, exceeding the bound "
            f"{beta_constant} * k = {max_diameter:.1f} (k={k})"
        )


def assert_forest_coarsens(coarser: MSTForest, finer: MSTForest) -> None:
    """Raise unless ``coarser`` coarsens ``finer`` (every finer fragment is contained)."""
    if not coarser.coarsens(finer):
        raise VerificationError("forest does not coarsen the finer forest")
    finer_edges = {normalize_edge(u, v) for u, v in finer.tree_edges()}
    coarser_edges = {normalize_edge(u, v) for u, v in coarser.tree_edges()}
    if not finer_edges <= coarser_edges:
        raise VerificationError("coarser forest dropped tree edges of the finer forest")
