"""Validation against *planted* ground truth.

Some workload-zoo families (see :data:`repro.workloads.PLANTED_FAMILIES`)
construct their instances around a spanning tree that is the unique MST
*by construction* -- every planted edge is strictly lighter than every
non-planted edge.  The generator records that tree in
``graph.graph["planted_mst"]``, which gives the verification layer an
oracle that is independent of the sequential references: a bug shared by
Kruskal, Prim and networkx (for example in the tie-breaking order)
cannot also forge the planted tree.

``run_single`` surfaces the planted tree in ``result.details`` for
provenance and, when verification is enabled, checks the run against it
through :func:`assert_matches_planted_mst`.
"""

from __future__ import annotations

from typing import List, Optional, Set

import networkx as nx

from ..core.results import MSTRunResult
from ..exceptions import VerificationError
from ..types import Edge, normalize_edge, normalize_edges

#: Graph attribute under which generators record their planted MST.
PLANTED_MST_KEY = "planted_mst"


def planted_mst_edges(graph: nx.Graph) -> Optional[Set[Edge]]:
    """The planted MST recorded on ``graph``, or ``None`` when absent.

    Raises :class:`~repro.exceptions.VerificationError` when the
    recorded tree is malformed (an edge not in the graph, or not exactly
    ``n - 1`` edges) -- a planted oracle that cannot be trusted is worse
    than none.
    """
    recorded = graph.graph.get(PLANTED_MST_KEY)
    if recorded is None:
        return None
    edges = {normalize_edge(u, v) for u, v in recorded}
    n = graph.number_of_nodes()
    if len(edges) != n - 1:
        raise VerificationError(
            f"planted MST of a {n}-vertex graph must have {n - 1} edges, "
            f"got {len(edges)}"
        )
    for u, v in sorted(edges):
        if not graph.has_edge(u, v):
            raise VerificationError(
                f"planted MST edge ({u}, {v}) is not an edge of the graph"
            )
    return edges


def planted_mst_details(graph: nx.Graph) -> Optional[List[List[int]]]:
    """JSON-safe form of the planted MST for ``result.details`` exposure."""
    edges = planted_mst_edges(graph)
    if edges is None:
        return None
    return [list(edge) for edge in sorted(edges)]


def assert_matches_planted_mst(
    graph: nx.Graph,
    result: MSTRunResult,
    expected: Optional[Set[Edge]] = None,
) -> None:
    """Raise unless ``result`` selected exactly the planted MST.

    A no-op for graphs that do not carry a planted tree, so the check
    can sit unconditionally on the verification path.  Callers that
    already extracted (and thereby validated) the planted tree pass it
    as ``expected`` to skip the re-extraction -- the batched executor
    caches it per graph.
    """
    if expected is None:
        expected = planted_mst_edges(graph)
    if expected is None:
        return
    edge_set = normalize_edges(result.edges)
    if edge_set == expected:
        return
    missing = sorted(expected - edge_set)
    extra = sorted(edge_set - expected)
    raise VerificationError(
        f"run disagrees with the planted MST: {len(missing)} planted edges "
        f"missing (e.g. {missing[:3]}), {len(extra)} non-planted edges "
        f"selected (e.g. {extra[:3]})"
    )
