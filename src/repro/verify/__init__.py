"""Verification layer: MST correctness, forest invariants, complexity bounds.

These checks are what turn the simulator's measurements into a
reproduction: every algorithm run can be validated against independent
oracles (networkx, Kruskal, Prim), every intermediate forest against the
structural lemmas of the paper (Lemmas 4.1/4.2), and every cost report
against the theorem bounds with explicit constants.
"""

from .complexity_checks import (
    assert_controlled_ghs_bounds,
    assert_elkin_bounds,
    elkin_message_bound,
    elkin_time_bound,
)
from .forest_checks import (
    assert_alpha_beta_forest,
    assert_forest_coarsens,
    assert_fragments_are_mst_subtrees,
    assert_valid_mst_forest,
)
from .mst_checks import (
    assert_same_mst,
    assert_spanning_tree,
    MSTOracle,
    reference_mst,
    verify_mst_result,
)
from .planted_checks import assert_matches_planted_mst, planted_mst_details, planted_mst_edges

__all__ = [
    "MSTOracle",
    "assert_matches_planted_mst",
    "assert_same_mst",
    "assert_spanning_tree",
    "planted_mst_details",
    "planted_mst_edges",
    "reference_mst",
    "verify_mst_result",
    "assert_alpha_beta_forest",
    "assert_forest_coarsens",
    "assert_fragments_are_mst_subtrees",
    "assert_valid_mst_forest",
    "assert_controlled_ghs_bounds",
    "assert_elkin_bounds",
    "elkin_message_bound",
    "elkin_time_bound",
]
