"""Complexity-bound checks: measured cost versus theorem bounds.

These checks compare what the simulator measured for one run against the
bound formulas of :mod:`repro.analysis.bounds`.  They are used in three
places: the optional ``strict_bounds`` mode of
:func:`repro.core.elkin_mst.compute_mst`, the integration tests, and the
benchmark harness (where a violated bound marks a row as a reproduction
failure rather than silently reporting a number).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.bounds import (
    controlled_ghs_message_bound,
    controlled_ghs_time_bound,
    elkin_message_bound_formula,
    elkin_time_bound_formula,
)
from ..core.controlled_ghs import ControlledGHSResult
from ..core.results import MSTRunResult
from ..exceptions import VerificationError
from ..types import CostReport


def elkin_time_bound(
    result: MSTRunResult, constant: float = 24.0, diameter: Optional[int] = None
) -> float:
    """The Theorem 3.2 round bound evaluated for ``result``'s instance.

    The BFS depth recorded on the result is used as the diameter term; it
    is at most ``D``, so the bound is evaluated conservatively (a run that
    passes with the BFS depth would also pass with the true ``D``).  The
    default constant doubles the calibrated one to absorb that the BFS
    depth may be as small as ``D / 2``.

    A result without a recorded BFS depth -- rehydrated from an old run
    store, or produced by a baseline that never builds a BFS tree --
    falls back to ``diameter`` (the instance description's hop-diameter
    ``D``, which only loosens the bound).  When neither is available the
    check refuses to run: silently using 0 would *tighten* the bound and
    fail runs that actually conform.
    """
    diameter_term = result.details.get("bfs_depth", diameter)
    if diameter_term is None:
        raise VerificationError(
            f"cannot evaluate the Theorem 3.2 round bound for {result.algorithm!r}: "
            "the result records no 'bfs_depth' and no instance diameter was "
            "supplied; pass diameter=D from the instance description"
        )
    return elkin_time_bound_formula(
        result.n, int(diameter_term), result.bandwidth, constant=constant
    )


def elkin_message_bound(result: MSTRunResult, constant: float = 12.0) -> float:
    """The Theorem 3.1/3.2 message bound evaluated for ``result``'s instance."""
    return elkin_message_bound_formula(result.n, result.m, constant=constant)


def assert_elkin_bounds(
    result: MSTRunResult,
    diameter: Optional[int] = None,
    condition: Optional[object] = None,
) -> None:
    """Raise :class:`VerificationError` if a run exceeded the theorem bounds.

    ``diameter`` is the instance's hop-diameter fallback for results
    that carry no BFS depth (see :func:`elkin_time_bound`).

    ``condition`` enables the *degradation mode*: the theorem bounds
    assume a perfectly reliable synchronous network, so a run under an
    injected :class:`~repro.conditions.NetworkCondition` is audited
    against the condition-stretched bounds instead -- rounds scaled by
    ``condition.time_stretch()`` (deferred and retransmitted traffic
    legitimately extends the schedule) and messages by
    ``condition.message_stretch()`` (each loss adds at most
    ``retransmit`` link-layer re-sends per message).  Without this the
    checks would flag bound "violations" that are artifacts of the
    fault model rather than of the algorithm.
    """
    time_stretch = message_stretch = 1.0
    if condition is not None:
        time_stretch = condition.time_stretch()
        message_stretch = condition.message_stretch()
    time_bound = elkin_time_bound(result, diameter=diameter) * time_stretch
    if result.rounds > time_bound:
        raise VerificationError(
            f"round count {result.rounds} exceeds the Theorem 3.1/3.2 bound {time_bound:.0f} "
            f"(n={result.n}, bfs_depth={result.details.get('bfs_depth')}, b={result.bandwidth}"
            + (f", time_stretch={time_stretch:g}" if condition is not None else "")
            + ")"
        )
    message_bound = elkin_message_bound(result) * message_stretch
    if result.messages > message_bound:
        raise VerificationError(
            f"message count {result.messages} exceeds the Theorem 3.1/3.2 bound "
            f"{message_bound:.0f} (n={result.n}, m={result.m}"
            + (f", message_stretch={message_stretch:g}" if condition is not None else "")
            + ")"
        )


def assert_controlled_ghs_bounds(
    result: ControlledGHSResult, n: int, m: int, cost: CostReport | None = None
) -> None:
    """Raise :class:`VerificationError` if Controlled-GHS exceeded Theorem 4.3's bounds."""
    measured = cost if cost is not None else result.cost
    time_bound = controlled_ghs_time_bound(n, result.k)
    if measured.rounds > time_bound:
        raise VerificationError(
            f"Controlled-GHS used {measured.rounds} rounds, exceeding the Theorem 4.3 bound "
            f"{time_bound:.0f} (n={n}, k={result.k})"
        )
    message_bound = controlled_ghs_message_bound(n, m, result.k)
    if measured.messages > message_bound:
        raise VerificationError(
            f"Controlled-GHS used {measured.messages} messages, exceeding the Theorem 4.3 bound "
            f"{message_bound:.0f} (n={n}, m={m}, k={result.k})"
        )
