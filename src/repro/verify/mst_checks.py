"""MST correctness checks against independent oracles.

The paper assumes unique edge weights, under which the MST is unique, so
correctness is exact set equality: the edges selected by a distributed
run must equal the edges selected by networkx's Kruskal, by our own
Kruskal and by our own Prim.  The helpers raise
:class:`~repro.exceptions.VerificationError` with a precise description
of the first discrepancy, which keeps property-based test failures easy
to read.
"""

from __future__ import annotations

from typing import Iterable, Set

import networkx as nx

from ..baselines.kruskal import kruskal_mst
from ..baselines.prim import prim_mst
from ..core.results import MSTRunResult
from ..exceptions import VerificationError
from ..types import Edge, normalize_edges


def reference_mst(graph: nx.Graph) -> Set[Edge]:
    """The unique MST of ``graph`` according to networkx (canonical edges).

    Also cross-checks networkx against our own Kruskal so that a bug in
    either reference cannot silently validate a wrong distributed result.
    """
    nx_edges = normalize_edges(nx.minimum_spanning_edges(graph, algorithm="kruskal", data=False))
    own_edges = kruskal_mst(graph)
    if nx_edges != own_edges:
        raise VerificationError(
            "internal oracle disagreement: networkx and Kruskal produced different MSTs "
            f"({len(nx_edges ^ own_edges)} differing edges); are the edge weights unique?"
        )
    return own_edges


def assert_spanning_tree(graph: nx.Graph, edges: Iterable[Edge]) -> None:
    """Raise unless ``edges`` forms a spanning tree of ``graph``."""
    edge_set = normalize_edges(edges)
    n = graph.number_of_nodes()
    if len(edge_set) != n - 1:
        raise VerificationError(
            f"a spanning tree of {n} vertices needs {n - 1} edges, got {len(edge_set)}"
        )
    for u, v in sorted(edge_set):
        if not graph.has_edge(u, v):
            raise VerificationError(f"selected edge ({u}, {v}) is not an edge of the graph")
    tree = nx.Graph()
    tree.add_nodes_from(graph.nodes())
    tree.add_edges_from(edge_set)
    if not nx.is_connected(tree):
        raise VerificationError("selected edges do not connect all vertices")


def assert_same_mst(graph: nx.Graph, edges: Iterable[Edge]) -> None:
    """Raise unless ``edges`` is exactly the unique MST of ``graph``."""
    edge_set = normalize_edges(edges)
    expected = reference_mst(graph)
    if edge_set == expected:
        return
    missing = sorted(expected - edge_set)
    extra = sorted(edge_set - expected)
    raise VerificationError(
        f"MST mismatch: {len(missing)} expected edges missing (e.g. {missing[:3]}), "
        f"{len(extra)} unexpected edges selected (e.g. {extra[:3]})"
    )


def verify_mst_result(graph: nx.Graph, result: MSTRunResult) -> None:
    """Full validation of a distributed run against all oracles.

    Checks: the edge set is a spanning tree, equals the unique MST
    (networkx + Kruskal + Prim), and the reported total weight matches
    the edge set.
    """
    assert_spanning_tree(graph, result.edges)
    assert_same_mst(graph, result.edges)
    prim_edges = prim_mst(graph)
    if normalize_edges(result.edges) != prim_edges:
        raise VerificationError("distributed result disagrees with Prim's algorithm")
    recomputed = sum(graph[u][v]["weight"] for u, v in result.edges)
    if abs(recomputed - result.total_weight) > 1e-6 * max(1.0, abs(recomputed)):
        raise VerificationError(
            f"reported weight {result.total_weight} does not match the edge set ({recomputed})"
        )
    if result.cost.rounds < 0 or result.cost.messages < 0:
        raise VerificationError("negative cost counters")


class MSTOracle:
    """Precomputed verification oracle for one graph instance.

    :func:`verify_mst_result` recomputes three reference MSTs on every
    call, which is the right trade-off for a one-off run but dominates
    the cost of a sweep that runs many algorithms on the same instance.
    The oracle front-loads that work: construction runs all three
    references once (networkx vs Kruskal vs Prim, cross-checked against
    each other), and :meth:`verify` then validates any number of results
    against the cached expectation at set-comparison cost.  The checks
    are exactly as strong as :func:`verify_mst_result` -- equality with
    the verified unique MST implies the spanning-tree property.

    The batched campaign executor keeps one oracle per distinct graph.
    """

    def __init__(self, graph: nx.Graph) -> None:
        self.expected = reference_mst(graph)
        prim_edges = prim_mst(graph)
        if prim_edges != self.expected:
            raise VerificationError(
                "internal oracle disagreement: Prim and Kruskal produced different "
                f"MSTs ({len(prim_edges ^ self.expected)} differing edges); "
                "are the edge weights unique?"
            )
        self.expected_weight = sum(graph[u][v]["weight"] for u, v in self.expected)

    def verify(self, result: MSTRunResult) -> None:
        """Validate ``result`` against the precomputed unique MST."""
        edge_set = normalize_edges(result.edges)
        if edge_set != self.expected:
            missing = sorted(self.expected - edge_set)
            extra = sorted(edge_set - self.expected)
            raise VerificationError(
                f"MST mismatch: {len(missing)} expected edges missing "
                f"(e.g. {missing[:3]}), {len(extra)} unexpected edges selected "
                f"(e.g. {extra[:3]})"
            )
        recomputed = self.expected_weight
        if abs(recomputed - result.total_weight) > 1e-6 * max(1.0, abs(recomputed)):
            raise VerificationError(
                f"reported weight {result.total_weight} does not match the edge set "
                f"({recomputed})"
            )
        if result.cost.rounds < 0 or result.cost.messages < 0:
            raise VerificationError("negative cost counters")
