"""Command-line front-end.

Examples::

    repro-mst run --family random_connected --n 200 --algorithm elkin
    repro-mst compare --family grid --rows 10 --cols 10
    repro-mst sweep-bandwidth --family random_connected --n 256 --bandwidths 1 2 4 8
    repro-mst sweep --preset e6-bandwidth --jobs 4 --output runs.jsonl --resume
    repro-mst sweep --preset zoo --output zoo.jsonl
    repro-mst sweep --families random_connected grid --sizes 64 128 \
        --algorithms elkin ghs --seeds 0 1 --jobs 4 --output runs.jsonl

The single-graph subcommands build one graph from a generator family,
run one or more of the simulated algorithms, verify the result against
the sequential oracles and print an ASCII table with the measured rounds
and messages.  ``sweep`` executes a whole campaign grid (a named preset
or a cross-product of the supplied axes) against a persistent JSONL run
store with resume semantics -- batched in-process by default (see
DESIGN.md, Section 10); with ``--jobs N`` the batched-parallel
scheduler leases graph-affine work units to N persistent workers, each
batching locally (DESIGN.md, Section 13).

Every subcommand is a thin shim over the scenario facade
(:mod:`repro.api`): the CLI assembles :class:`~repro.api.Scenario`
grids and a :class:`~repro.api.Runner` executes them, so command-line
runs share the exact execution path (verification, provenance, store
writes) of programmatic ones.  Sequential references (``kruskal``,
``prim``, ``boruvka_seq``) are accepted wherever an algorithm name is;
their rows report zero rounds and messages.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .algorithms import available_algorithms
from .analysis.experiments import compare_algorithms, sweep_bandwidth
from .analysis.tables import format_table
from .api import Runner, Scenario
from .campaign import (
    available_presets,
    Campaign,
    execute_campaign,
    graph_spec_for,
    open_store,
    preset_campaign,
)
from .campaign.store import convert_store, DURABILITY_LEVELS, STORE_BACKENDS
from .config import RunConfig
from .exceptions import ConfigurationError
from .graphs.generators import available_families, make_graph
from .graphs.properties import graph_summary
from .logging_utils import enable_console_logging
from .simulator.engine import available_engines, DEFAULT_ENGINE

#: Families a CLI user can ask for (edge_list specs carry explicit
#: edges); includes the workload-zoo families from :mod:`repro.workloads`.
CLI_FAMILIES = available_families()


def _engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=available_engines(),
        help="simulation kernel to run on; every engine reports identical "
        "rounds and messages (see DESIGN.md, Section 5)",
    )


def _condition_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--condition",
        default=None,
        metavar="SPEC",
        help="network condition: a preset name (see repro.conditions."
        "available_conditions: lossy, flaky, delayed, jittery, heavy-delay, "
        "crash-stop, crash-restart) or '+'-separated clauses such as "
        "'loss(rate=0.1,retransmit=4)+delay(max=2)+seed=7' "
        "(see DESIGN.md, Section 14)",
    )


def _graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        default="random_connected",
        choices=CLI_FAMILIES,
        help="graph generator family",
    )
    parser.add_argument("--n", type=int, default=100, help="number of vertices (where applicable)")
    parser.add_argument("--rows", type=int, default=None, help="rows (grid / torus families)")
    parser.add_argument("--cols", type=int, default=None, help="columns (grid / torus families)")
    parser.add_argument("--clique-size", type=int, default=None, help="clique size (lollipop / barbell)")
    parser.add_argument("--path-length", type=int, default=None, help="path length (lollipop / barbell)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for the generator")


def _build_graph(args: argparse.Namespace):
    from .graphs.generators import SHAPE_RULES

    params = {"seed": args.seed}
    if args.family in ("grid", "torus") and (args.rows or args.cols):
        params["rows"] = args.rows or 10
        params["cols"] = args.cols or 10
    elif args.family in ("lollipop", "barbell") and (args.clique_size or args.path_length):
        params["clique_size"] = args.clique_size or 10
        params["path_length"] = args.path_length or 30
    elif args.family in SHAPE_RULES:
        # Families not parameterized by a plain vertex count (grids,
        # hypercubes, ...) derive their canonical shape from --n.
        params.update(SHAPE_RULES[args.family](args.n))
    else:
        params["n"] = args.n
    return make_graph(args.family, **params)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mst",
        description="Deterministic distributed MST (Elkin, PODC 2017) on a CONGEST simulator",
    )
    parser.add_argument("--verbose", action="store_true", help="enable console logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one algorithm on one generated graph")
    _graph_arguments(run_parser)
    run_parser.add_argument(
        "--algorithm", default="elkin", choices=available_algorithms(), help="algorithm to run"
    )
    run_parser.add_argument("--bandwidth", type=int, default=1, help="CONGEST(b log n) bandwidth")
    _engine_argument(run_parser)
    _condition_argument(run_parser)

    subparsers.add_parser(
        "engines",
        help="list simulation kernels: registered engines plus unavailable "
        "ones with the reason they cannot be used",
    )

    compare_parser = subparsers.add_parser("compare", help="compare algorithms on one graph")
    _graph_arguments(compare_parser)
    compare_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["elkin", "ghs", "gkp"],
        choices=available_algorithms(),
        help="algorithms to compare",
    )
    _engine_argument(compare_parser)

    sweep_parser = subparsers.add_parser(
        "sweep-bandwidth", help="run the paper's algorithm under several bandwidths"
    )
    _graph_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--bandwidths", nargs="+", type=int, default=[1, 2, 4, 8], help="bandwidth values"
    )
    _engine_argument(sweep_parser)

    campaign_parser = subparsers.add_parser(
        "sweep",
        help="execute a campaign grid (preset or cross-product), "
        "optionally in parallel against a persistent run store",
    )
    campaign_parser.add_argument(
        "--preset",
        default=None,
        choices=available_presets(),
        help="named scenario grid (E1-E9 reproductions); overrides the grid axes",
    )
    campaign_parser.add_argument(
        "--families",
        nargs="+",
        default=["random_connected"],
        choices=CLI_FAMILIES,
        help="graph families of the grid",
    )
    campaign_parser.add_argument(
        "--sizes", nargs="+", type=int, default=[64], help="target vertex counts of the grid"
    )
    campaign_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["elkin"],
        choices=available_algorithms(),
        help="algorithms of the grid",
    )
    campaign_parser.add_argument(
        "--bandwidths", nargs="+", type=int, default=[1], help="CONGEST(b log n) bandwidths"
    )
    campaign_parser.add_argument(
        "--seeds", nargs="+", type=int, default=[0], help="generator seeds of the grid"
    )
    _condition_argument(campaign_parser)
    campaign_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = in-process; N > 1 leases graph-affine "
        "work units to N persistent workers, each batching locally)",
    )
    campaign_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="run store; completed cells are appended with provenance "
        "(JSONL file, sharded directory, or columnar sqlite file)",
    )
    campaign_parser.add_argument(
        "--store-backend",
        default="auto",
        choices=STORE_BACKENDS,
        help="run-store backend for --output: 'auto' (default) picks by "
        "path -- a .sqlite/.sqlite3/.db suffix or an existing sqlite "
        "file selects 'columnar', anything else 'jsonl' (see DESIGN.md, "
        "Section 15)",
    )
    campaign_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells whose content hash is already in the run store",
    )
    campaign_parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip MST verification against the sequential oracle",
    )
    batch_group = campaign_parser.add_mutually_exclusive_group()
    batch_group.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=None,
        help="force batched execution (graphs, oracles and engine state "
        "shared across cells; rows byte-identical to the per-cell path); "
        "the default already batches everywhere, in-process or per worker",
    )
    batch_group.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="force per-cell execution (serial, or the legacy process "
        "pool with --jobs N)",
    )
    # No default retarget: presets keep the engines they were designed
    # with (the zoo runs on the fast kernel) unless --engine is given.
    campaign_parser.add_argument(
        "--engine",
        default="",
        choices=available_engines(),
        help="retarget every cell at this simulation kernel; the default "
        "keeps each preset's own engine (ad-hoc grids default to "
        f"{DEFAULT_ENGINE!r})",
    )
    campaign_parser.add_argument(
        "--no-diameter",
        action="store_true",
        help="skip the hop-diameter (D) column of the instance "
        "description; exact diameter is the one O(n m) description "
        "field and dominates wall-clock at zoo-large scale",
    )
    campaign_parser.add_argument(
        "--durability",
        default="batch",
        choices=DURABILITY_LEVELS,
        help="run-store commit policy: 'batch' group-commits with one "
        "fsync per batch (default), 'record' fsyncs every record, "
        "'none' never fsyncs (see DESIGN.md, Section 11)",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="aggregate a run store into the campaign analysis report "
        "(per-family tables, scaling fits, theorem-bound audit)",
    )
    report_parser.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="run store (JSONL file, sharded directory, or columnar sqlite "
        "file); opened read-only",
    )
    report_parser.add_argument(
        "--full-rescan",
        action="store_true",
        help="re-derive every row from the raw record payloads instead of "
        "the materialized state (columnar stores; byte-identical output, "
        "slower -- the escape hatch the E17 benchmark measures against)",
    )
    report_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the rendered markdown here (e.g. EXPERIMENTS.md); "
        "the default prints it to stdout",
    )
    report_parser.add_argument(
        "--title", default="EXPERIMENTS", help="top-level heading of the document"
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="static analysis: CONGEST-locality, determinism and contract "
        "rules over the source tree (see DESIGN.md, Section 16)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    lint_parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="report format: human-readable text or the JSON artifact shape",
    )
    lint_parser.add_argument(
        "--select",
        nargs="+",
        default=None,
        metavar="RULE-ID",
        help="run only these rule ids (e.g. DET203 LOC101)",
    )
    lint_parser.add_argument(
        "--ignore",
        nargs="+",
        default=None,
        metavar="RULE-ID",
        help="skip these rule ids",
    )
    lint_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the rendered report to this file",
    )
    lint_parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings (with their justifications) in "
        "the text report",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )

    store_parser = subparsers.add_parser(
        "store", help="run-store maintenance (compact / merge)"
    )
    store_commands = store_parser.add_subparsers(dest="store_command", required=True)
    compact_parser = store_commands.add_parser(
        "compact", help="rewrite a store dropping superseded (last-record-wins) duplicates"
    )
    compact_parser.add_argument(
        "--store", required=True, metavar="PATH", help="run store to compact in place"
    )
    merge_parser = store_commands.add_parser(
        "merge", help="fold one or more stores into a destination store (idempotent)"
    )
    merge_parser.add_argument(
        "--into", required=True, metavar="DEST", help="destination store (created if missing)"
    )
    merge_parser.add_argument(
        "sources",
        nargs="+",
        metavar="STORE",
        help="source stores, any backend (opened read-only)",
    )
    convert_parser = store_commands.add_parser(
        "convert",
        help="copy a store record-for-record into a new backend "
        "(JSONL <-> columnar; byte-identical round trips)",
    )
    convert_parser.add_argument(
        "source", metavar="SOURCE", help="store to convert (opened read-only)"
    )
    convert_parser.add_argument(
        "--into", required=True, metavar="DEST", help="destination path (must not exist)"
    )
    convert_parser.add_argument(
        "--backend",
        default="auto",
        choices=STORE_BACKENDS,
        help="destination backend; 'auto' (default) picks by the "
        "destination path's suffix",
    )
    return parser


def _run_sweep(args: argparse.Namespace) -> int:
    """Handle the ``sweep`` subcommand."""
    if args.preset is not None:
        campaign = preset_campaign(args.preset, engine=args.engine)
    else:
        graphs = [
            graph_spec_for(family, size)
            for family in args.families
            for size in args.sizes
        ]
        campaign = Campaign.from_grid(
            "cli-sweep",
            graphs=graphs,
            algorithms=tuple(args.algorithms),
            bandwidths=tuple(args.bandwidths),
            engines=(args.engine or DEFAULT_ENGINE,),
            seeds=tuple(args.seeds),
        )
    if args.condition is not None:
        campaign = campaign.with_condition(args.condition)
    store = (
        open_store(args.output, backend=args.store_backend, durability=args.durability)
        if args.output
        else None
    )
    report = execute_campaign(
        campaign,
        store=store,
        jobs=args.jobs,
        resume=args.resume,
        verify=not args.no_verify,
        compute_diameter=not args.no_diameter,
        batch=args.batch,
    )
    print(format_table(report.rows))
    summary = report.summary()
    if args.output:
        store.close()
        summary += f" -> {args.output}"
    print(summary)
    return 0


def _run_engines(args: argparse.Namespace) -> int:
    """Handle the ``engines`` subcommand."""
    from .simulator.engine import unavailable_engines

    rows = [
        {"engine": name, "status": "available", "note": "-"}
        for name in available_engines()
    ]
    rows += [
        {"engine": name, "status": "unavailable", "note": reason}
        for name, reason in sorted(unavailable_engines().items())
    ]
    print(format_table(rows))
    print(f"default engine: {DEFAULT_ENGINE}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    """Handle the ``report`` subcommand."""
    from .analysis.report import write_report

    store_path = Path(args.store)
    if not store_path.exists():
        raise ConfigurationError(f"no run store at {store_path}")
    with open_store(store_path, read_only=True) as store:
        document = write_report(
            store, output=args.output, title=args.title, full_rescan=args.full_rescan
        )
    if args.output:
        print(f"wrote campaign report -> {args.output}")
    else:
        print(document, end="")
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    """Handle the ``lint`` subcommand (exit 1 on unsuppressed findings)."""
    from .lint import lint_paths, render_json, render_rule_catalog, render_text

    if args.list_rules:
        print(render_rule_catalog(), end="")
        return 0

    def _split(ids: Optional[List[str]]) -> Optional[List[str]]:
        # Accept both `--select A B` and the flake8-style `--select A,B`.
        if ids is None:
            return None
        return [part for token in ids for part in token.split(",") if part]

    result = lint_paths(args.paths, select=_split(args.select), ignore=_split(args.ignore))
    if args.output_format == "json":
        document = render_json(result)
    else:
        document = render_text(result, show_suppressed=args.show_suppressed)
    if args.output:
        Path(args.output).write_text(document, encoding="utf-8")
    print(document, end="")
    return 0 if result.ok else 1


def _run_store_maintenance(args: argparse.Namespace) -> int:
    """Handle the ``store compact`` / ``store merge`` subcommands."""
    if args.store_command == "compact":
        store_path = Path(args.store)
        if not store_path.exists():
            raise ConfigurationError(f"no run store at {store_path}")
        with open_store(store_path) as store:
            stats = store.compact()
        print(
            f"compacted {args.store}: {stats['before']} -> {stats['after']} records "
            f"({stats['dropped']} superseded dropped)"
        )
    elif args.store_command == "convert":
        stats = convert_store(args.source, args.into, backend=args.backend)
        print(
            f"converted {args.source} -> {args.into} "
            f"({stats['records']} records, {stats['backend']} backend)"
        )
    else:
        with open_store(args.into) as destination:
            for source in args.sources:
                stats = destination.merge_from(source)
                print(
                    f"merged {source} -> {args.into}: {stats['runs']} runs, "
                    f"{stats['graphs']} graphs ({stats['skipped']} already present)"
                )
        print(f"destination holds {len(destination)} runs")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-mst`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()

    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "engines":
        return _run_engines(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "store":
        return _run_store_maintenance(args)

    graph = _build_graph(args)
    summary = graph_summary(graph)
    print(
        f"graph: family={args.family} n={summary.n} m={summary.m} D={summary.hop_diameter}"
    )

    if args.command == "run":
        scenario = Scenario(
            graph=graph,
            algorithm=args.algorithm,
            config=RunConfig(
                bandwidth=args.bandwidth, engine=args.engine, condition=args.condition
            ),
        )
        # The hop-diameter was already printed from graph_summary above.
        result = Runner(compute_diameter=False).run(scenario).result
        print(format_table([result.summary_row()]))
        print(f"MST weight: {result.total_weight:.3f} ({result.edge_count} edges, verified)")
        telemetry = result.details.get("condition")
        if telemetry:
            print(
                f"condition {telemetry.get('condition')}: "
                f"{telemetry.get('dropped', 0)} dropped, "
                f"{telemetry.get('delayed', 0)} delayed, "
                f"{telemetry.get('retransmits', 0)} retransmits, "
                f"{telemetry.get('crash_omissions', 0)} crash omissions"
            )
    elif args.command == "compare":
        rows = compare_algorithms(
            graph, algorithms=args.algorithms, label=args.family, engine=args.engine
        )
        print(format_table(rows))
    elif args.command == "sweep-bandwidth":
        rows = sweep_bandwidth(
            graph, bandwidths=args.bandwidths, label=args.family, engine=args.engine
        )
        print(format_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
