"""Command-line front-end.

Examples::

    repro-mst run --family random_connected --n 200 --algorithm elkin
    repro-mst compare --family grid --rows 10 --cols 10
    repro-mst sweep-bandwidth --family random_connected --n 256 --bandwidths 1 2 4 8

Every subcommand builds a graph from a generator family, runs one or more
of the simulated algorithms, verifies the result against the sequential
oracles and prints an ASCII table with the measured rounds and messages.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.experiments import (
    available_algorithms,
    compare_algorithms,
    run_single,
    sweep_bandwidth,
)
from .analysis.tables import format_table
from .graphs.generators import FAMILIES, make_graph
from .graphs.properties import graph_summary
from .logging_utils import enable_console_logging
from .simulator.engine import DEFAULT_ENGINE, available_engines


def _engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default=DEFAULT_ENGINE,
        choices=available_engines(),
        help="simulation kernel to run on; every engine reports identical "
        "rounds and messages (see DESIGN.md, Section 5)",
    )


def _graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        default="random_connected",
        choices=sorted(FAMILIES),
        help="graph generator family",
    )
    parser.add_argument("--n", type=int, default=100, help="number of vertices (where applicable)")
    parser.add_argument("--rows", type=int, default=None, help="rows (grid / torus families)")
    parser.add_argument("--cols", type=int, default=None, help="columns (grid / torus families)")
    parser.add_argument("--clique-size", type=int, default=None, help="clique size (lollipop / barbell)")
    parser.add_argument("--path-length", type=int, default=None, help="path length (lollipop / barbell)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for the generator")


def _build_graph(args: argparse.Namespace):
    params = {"seed": args.seed}
    if args.family in ("grid", "torus"):
        params["rows"] = args.rows or 10
        params["cols"] = args.cols or 10
    elif args.family in ("lollipop", "barbell"):
        params["clique_size"] = args.clique_size or 10
        params["path_length"] = args.path_length or 30
    else:
        params["n"] = args.n
    return make_graph(args.family, **params)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mst",
        description="Deterministic distributed MST (Elkin, PODC 2017) on a CONGEST simulator",
    )
    parser.add_argument("--verbose", action="store_true", help="enable console logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one algorithm on one generated graph")
    _graph_arguments(run_parser)
    run_parser.add_argument(
        "--algorithm", default="elkin", choices=available_algorithms(), help="algorithm to run"
    )
    run_parser.add_argument("--bandwidth", type=int, default=1, help="CONGEST(b log n) bandwidth")
    _engine_argument(run_parser)

    compare_parser = subparsers.add_parser("compare", help="compare algorithms on one graph")
    _graph_arguments(compare_parser)
    compare_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["elkin", "ghs", "gkp"],
        choices=available_algorithms(),
        help="algorithms to compare",
    )
    _engine_argument(compare_parser)

    sweep_parser = subparsers.add_parser(
        "sweep-bandwidth", help="run the paper's algorithm under several bandwidths"
    )
    _graph_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--bandwidths", nargs="+", type=int, default=[1, 2, 4, 8], help="bandwidth values"
    )
    _engine_argument(sweep_parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-mst`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()

    graph = _build_graph(args)
    summary = graph_summary(graph)
    print(
        f"graph: family={args.family} n={summary.n} m={summary.m} D={summary.hop_diameter}"
    )

    if args.command == "run":
        result = run_single(
            graph, algorithm=args.algorithm, bandwidth=args.bandwidth, engine=args.engine
        )
        print(format_table([result.summary_row()]))
        print(f"MST weight: {result.total_weight:.3f} ({result.edge_count} edges, verified)")
    elif args.command == "compare":
        rows = compare_algorithms(
            graph, algorithms=args.algorithms, label=args.family, engine=args.engine
        )
        print(format_table(rows))
    elif args.command == "sweep-bandwidth":
        rows = sweep_bandwidth(
            graph, bandwidths=args.bandwidths, label=args.family, engine=args.engine
        )
        print(format_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
