"""The :class:`Scenario`: one fully-specified, content-hashed execution.

A scenario pins down everything a run depends on -- the graph source,
the algorithm name, the :class:`~repro.config.RunConfig` and the verify
policy -- and normalizes it at construction time:

* the graph source may be a declarative
  :class:`~repro.graphs.generators.GraphSpec`, a prebuilt
  :class:`networkx.Graph` (serialized into an ``edge_list`` spec so it
  hashes and round-trips), or a bare ``(u, v, weight)`` edge list;
* the algorithm and engine names are validated against their registries
  immediately, so a typo fails at construction with the list of valid
  options rather than deep inside a sweep;
* prebuilt graphs and edge lists are rejected when disconnected -- the
  distributed MST model requires a connected network.

Scenarios are frozen: two equal scenarios have equal
:meth:`Scenario.key` content hashes, and the hash doubles as the run
store key, which is what makes one-off runs and 10k-cell sweeps share
resume semantics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

import networkx as nx

from ..algorithms import algorithm_info
from ..campaign.spec import inline_graph_spec, RunSpec
from ..config import normalize_config, RunConfig
from ..exceptions import ConfigurationError, DisconnectedGraphError
from ..graphs.generators import FAMILIES, GraphSpec
from ..simulator.engine import available_engines

__all__ = ["GraphSource", "Scenario"]

#: Accepted graph sources: declarative spec, prebuilt graph, or edge list.
GraphSource = Union[GraphSpec, nx.Graph, Iterable[Tuple[int, int, float]]]


def _normalize_graph_source(source: GraphSource) -> GraphSpec:
    """Turn any accepted graph source into a declarative :class:`GraphSpec`."""
    if isinstance(source, GraphSpec):
        if source.family not in FAMILIES:
            known = ", ".join(sorted(FAMILIES))
            raise ConfigurationError(
                f"unknown graph family {source.family!r}; known families: {known}"
            )
        return source
    if isinstance(source, nx.Graph):
        if source.number_of_nodes() == 0:
            raise ConfigurationError("scenario graph is empty")
        if not nx.is_connected(source):
            raise DisconnectedGraphError(
                "scenario graph is disconnected "
                f"({nx.number_connected_components(source)} components); "
                "distributed MST requires a connected network -- connect the "
                "components or run one scenario per component"
            )
        return inline_graph_spec(source)
    if isinstance(source, (str, bytes)):
        raise ConfigurationError(
            f"scenario graph must be a GraphSpec, networkx.Graph or edge list, "
            f"got {source!r}; to reference a generator family, build a "
            f"GraphSpec(family, params)"
        )
    try:
        edges = [(int(u), int(v), float(w)) for u, v, w in source]
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"scenario graph must be a GraphSpec, networkx.Graph or an iterable "
            f"of (u, v, weight) triples ({error})"
        ) from error
    if not edges:
        raise ConfigurationError("scenario edge list is empty")
    graph = nx.Graph()
    for u, v, weight in edges:
        graph.add_edge(u, v, weight=weight)
    return _normalize_graph_source(graph)


@dataclass(frozen=True)
class Scenario:
    """One fully-specified execution: graph x algorithm x config x policy.

    Attributes:
        graph: the graph source; normalized to a
            :class:`~repro.graphs.generators.GraphSpec` at construction
            (prebuilt graphs / edge lists become ``edge_list`` specs).
        algorithm: registered algorithm name (see
            :func:`repro.algorithms.available_algorithms`).
        config: run configuration; ``None`` means defaults.  The
            config's ``seed`` doubles as the generator-seed axis exactly
            as in campaign grids.
        verify: check the produced MST against the sequential oracles.
        label: presentation-only row label (not part of the identity).
    """

    graph: GraphSource
    algorithm: str = "elkin"
    config: Optional[RunConfig] = None
    verify: bool = True
    label: Optional[str] = None

    def __post_init__(self) -> None:
        config = normalize_config(self.config)
        # Re-validate: RunConfig is mutable, so a caller may hand us one
        # that was edited after construction.
        if config.bandwidth < 1:
            raise ConfigurationError(
                f"bandwidth must be >= 1, got {config.bandwidth} "
                "(b of the CONGEST(b log n) model counts words per message)"
            )
        engines = available_engines()
        if config.engine not in engines:
            raise ConfigurationError(
                f"unknown engine {config.engine!r}; available: {', '.join(engines)}"
            )
        algorithm_info(self.algorithm)  # raises with the available names
        object.__setattr__(self, "graph", _normalize_graph_source(self.graph))
        # Defensive copy: RunConfig is mutable, and aliasing the caller's
        # object would let post-construction mutation change the content
        # hash (and bypass the validation above).
        object.__setattr__(self, "config", dataclasses.replace(config))
        object.__setattr__(self, "verify", bool(self.verify))
        if self.graph.family == "edge_list" and config.seed is not None:
            raise ConfigurationError(
                "a generator seed does not apply to a prebuilt graph or edge "
                "list (the instance is fixed); drop config.seed or describe "
                "the graph as a GraphSpec generator family"
            )

    # -- identity --------------------------------------------------------

    def to_run_spec(self) -> RunSpec:
        """The campaign-layer cell equivalent to this scenario."""
        config = self.config
        assert isinstance(config, RunConfig)  # normalized in __post_init__
        return RunSpec(
            graph=self.graph,
            algorithm=self.algorithm,
            bandwidth=config.bandwidth,
            engine=config.engine,
            seed=config.seed,
            base_forest_k=config.base_forest_k,
            collect_telemetry=config.collect_telemetry,
            strict_bounds=config.strict_bounds,
            label=self.label,
            condition=config.condition,
        )

    def key(self) -> str:
        """Content hash identifying this scenario (doubles as the store key)."""
        return self.to_run_spec().run_key()

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (see :meth:`from_json_dict`)."""
        payload = self.to_run_spec().to_json_dict()
        payload["verify"] = self.verify
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json_dict` output."""
        spec = RunSpec.from_json_dict(payload)
        return cls.from_run_spec(spec, verify=bool(payload.get("verify", True)))

    @classmethod
    def from_run_spec(cls, spec: RunSpec, verify: bool = True) -> "Scenario":
        """Lift a campaign-layer :class:`RunSpec` into a scenario."""
        return cls(
            graph=spec.graph,
            algorithm=spec.algorithm,
            config=RunConfig(
                bandwidth=spec.bandwidth,
                base_forest_k=spec.base_forest_k,
                engine=spec.engine,
                collect_telemetry=spec.collect_telemetry,
                strict_bounds=spec.strict_bounds,
                seed=spec.seed,
                condition=spec.condition,
            ),
            verify=verify,
            label=spec.label,
        )

    # -- conveniences ----------------------------------------------------

    def build_graph(self) -> nx.Graph:
        """Materialize the graph instance this scenario describes."""
        return self.to_run_spec().build_graph()

    def display_label(self) -> str:
        return self.to_run_spec().display_label()

    def with_config(self, **changes: object) -> "Scenario":
        """A copy with the given :class:`RunConfig` fields replaced."""
        assert isinstance(self.config, RunConfig)
        return dataclasses.replace(
            self, config=dataclasses.replace(self.config, **changes)
        )
