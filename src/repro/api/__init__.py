"""The typed front door of the package: scenarios in, verified results out.

This package is the *single* public execution API.  A
:class:`Scenario` freezes everything one run depends on (graph source,
algorithm, :class:`~repro.config.RunConfig`, verify policy) behind a
content hash; a :class:`Runner` executes scenarios -- one at a time, in
parallel batches, or as a lazy stream -- by routing every call through
the campaign executor, so verification, provenance stamping, run-store
persistence and lifecycle hooks behave identically for a quickstart
one-liner and a 10k-cell sweep.

Quickstart::

    from repro.api import Runner, Scenario
    from repro import GraphSpec, RunConfig

    runner = Runner(store="runs.jsonl")
    outcome = runner.run(
        Scenario(
            graph=GraphSpec("random_connected", {"n": 200, "seed": 7}),
            algorithm="elkin",
            config=RunConfig(bandwidth=2, engine="fast"),
        )
    )
    print(outcome.result.rounds, outcome.result.messages)

Everything older (``run_single``, ``sweep_graphs``,
``compare_algorithms``, the ``repro-mst`` subcommands) is a thin shim
over this facade; see the README's Migration section for the mapping.
"""

from ..algorithms import (
    algorithm_info,
    algorithm_registry,
    AlgorithmInfo,
    available_algorithms,
    register_algorithm,
)
from .hooks import ProgressReporter, RunObserver, TelemetryCollector
from .runner import Runner, ScenarioOutcome
from .scenario import GraphSource, Scenario

__all__ = [
    "AlgorithmInfo",
    "GraphSource",
    "ProgressReporter",
    "RunObserver",
    "Runner",
    "Scenario",
    "ScenarioOutcome",
    "TelemetryCollector",
    "algorithm_info",
    "algorithm_registry",
    "available_algorithms",
    "register_algorithm",
]
