"""Lifecycle hooks: observe scenario executions as they happen.

The :class:`~repro.api.runner.Runner` (and, underneath it, the campaign
executor) emits three events per executed cell:

* ``on_run_start(spec)`` -- the cell is about to be simulated;
* ``on_phase(spec, phase)`` -- one recorded
  :class:`~repro.types.PhaseTelemetry` of the completed run (emitted in
  phase order, after the run finishes -- the simulator is synchronous,
  so phases are replayed from the result rather than streamed);
* ``on_result(spec, result, row)`` -- the cell finished with ``result``
  and produced the flat output ``row``.

Observers implement any subset of :class:`RunObserver`; missing methods
are simply skipped.  Two ready-made observers ship with the package:
:class:`ProgressReporter` (human-readable progress lines) and
:class:`TelemetryCollector` (accumulates per-phase telemetry across a
whole sweep for the analysis layer).

Resumed cells (already present in the run store) fire no events.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Protocol, runtime_checkable, TextIO

from ..campaign.spec import RunSpec
from ..core.results import MSTRunResult
from ..types import PhaseTelemetry

__all__ = ["RunObserver", "ProgressReporter", "TelemetryCollector"]


@runtime_checkable
class RunObserver(Protocol):
    """Protocol for scenario-lifecycle observers (all methods optional)."""

    def on_run_start(self, spec: RunSpec) -> None:
        """Called right before a cell is simulated."""

    def on_phase(self, spec: RunSpec, phase: PhaseTelemetry) -> None:
        """Called once per recorded phase of a completed run, in order."""

    def on_result(
        self, spec: RunSpec, result: MSTRunResult, row: Dict[str, object]
    ) -> None:
        """Called when a cell completes."""


class ProgressReporter:
    """Observer printing one line per lifecycle event to a stream.

    The default stream is stderr so progress does not pollute piped
    table output.  ``phases=True`` additionally prints one line per
    recorded algorithm phase (verbose on large sweeps).
    """

    def __init__(self, stream: Optional[TextIO] = None, phases: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.phases = phases
        self.started = 0
        self.finished = 0

    def _emit(self, text: str) -> None:
        print(text, file=self.stream)

    def on_run_start(self, spec: RunSpec) -> None:
        self.started += 1
        self._emit(
            f"[{self.started}] run {spec.algorithm} on {spec.display_label()} "
            f"(b={spec.bandwidth}, engine={spec.engine})"
        )

    def on_phase(self, spec: RunSpec, phase: PhaseTelemetry) -> None:
        if self.phases:
            self._emit(
                f"    phase {phase.phase}: {phase.fragments_before} -> "
                f"{phase.fragments_after} fragments, {phase.rounds} rounds, "
                f"{phase.messages} messages"
            )

    def on_result(
        self, spec: RunSpec, result: MSTRunResult, row: Dict[str, object]
    ) -> None:
        self.finished += 1
        self._emit(
            f"    done: {result.rounds} rounds, {result.messages} messages, "
            f"weight {result.total_weight:.3f}"
        )


class TelemetryCollector:
    """Observer accumulating per-phase telemetry rows across a sweep.

    Each collected row is flat and JSON-safe (scenario provenance plus
    the phase counters), so a whole sweep's phase decomposition can be
    dumped straight into the analysis tables -- this is the
    campaign-scale version of what ``bench_e10`` does for one run.
    """

    def __init__(self) -> None:
        self.phase_rows: List[Dict[str, object]] = []
        self.run_rows: List[Dict[str, object]] = []

    def on_phase(self, spec: RunSpec, phase: PhaseTelemetry) -> None:
        self.phase_rows.append(
            {
                "graph": spec.display_label(),
                "algorithm": spec.algorithm,
                "bandwidth": spec.bandwidth,
                "engine": spec.engine,
                "seed": spec.seed,
                "phase": phase.phase,
                "fragments_before": phase.fragments_before,
                "fragments_after": phase.fragments_after,
                "rounds": phase.rounds,
                "messages": phase.messages,
                "mst_edges_added": phase.mst_edges_added,
            }
        )

    def on_result(
        self, spec: RunSpec, result: MSTRunResult, row: Dict[str, object]
    ) -> None:
        self.run_rows.append(dict(row))
