"""The :class:`Runner` facade: the one execution path for every scenario.

``Runner.run`` (one scenario), ``Runner.run_many`` (a batch, optionally
on a worker pool) and ``Runner.stream`` (lazy iteration) all route
through the campaign executor, so a one-off call gets exactly the
services a 10k-cell sweep gets: verification against the sequential
oracles, provenance stamping, run-store persistence with resume, the
graph-description cache and lifecycle hooks.  There is deliberately no
second code path -- the legacy entrypoints (``run_single``,
``sweep_graphs``, ``compare_algorithms``, the CLI) are shims over this
facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..campaign.executor import CampaignReport, execute_campaign
from ..campaign.spec import Campaign
from ..campaign.store import open_store, RunStore
from ..core.results import MSTRunResult
from ..exceptions import ConfigurationError
from .scenario import Scenario

__all__ = ["Runner", "ScenarioOutcome"]


@dataclass
class ScenarioOutcome:
    """Everything one executed scenario produced.

    Attributes:
        scenario: the scenario that ran.
        row: the flat, JSON-safe output row (same columns a campaign
            sweep reports: instance description, measured costs and --
            for the paper's algorithm -- the theorem-bound ratios).
        result: the full :class:`~repro.core.results.MSTRunResult`.
        reused: True when the run store already held the cell and the
            execution was skipped (resume).
    """

    scenario: Scenario
    row: Dict[str, object]
    result: MSTRunResult
    reused: bool = False


class Runner:
    """Scenario executor with a persistent store and lifecycle hooks.

    Args:
        store: a run store instance (any backend -- JSONL
            :class:`~repro.campaign.store.RunStore` or columnar
            :class:`~repro.campaign.columnar.ColumnarStore`), a store
            path (backend auto-detected, see
            :func:`~repro.campaign.store.open_store`), or ``None`` for
            a private in-memory store.
        resume: when True (default), scenarios whose content hash is
            already in the store are answered from it without
            re-simulating.
        hooks: lifecycle observers (see :mod:`repro.api.hooks`).
        compute_diameter: include the hop-diameter in instance
            descriptions (the one expensive description column).
    """

    def __init__(
        self,
        store: Union[RunStore, str, None] = None,
        resume: bool = True,
        hooks: Sequence[object] = (),
        compute_diameter: bool = True,
    ) -> None:
        if store is None or isinstance(store, (str, Path)):
            self.store = open_store(store)
        else:
            self.store = store
        self.resume = resume
        self.hooks: List[object] = list(hooks)
        self.compute_diameter = compute_diameter

    def add_hook(self, hook: object) -> None:
        """Attach a lifecycle observer to every subsequent execution."""
        self.hooks.append(hook)

    # -- execution -------------------------------------------------------

    def run(self, scenario: Scenario) -> ScenarioOutcome:
        """Execute one scenario and return its outcome."""
        return self.run_many([scenario])[0]

    def run_many(
        self, scenarios: Iterable[Scenario], jobs: int = 1, batch: Optional[bool] = None
    ) -> List[ScenarioOutcome]:
        """Execute a batch of scenarios, batched and optionally parallel.

        Scenarios may disagree on their ``verify`` policy; the batch is
        partitioned into at most two campaigns (verified / unverified)
        and the outcomes are returned in input order either way.  With
        ``jobs > 1`` rows are identical to the in-process ones -- more
        processes only change wall-clock time.  ``batch`` selects
        batched execution (graphs, oracles and engine state shared
        across cells through one
        :class:`~repro.simulator.fast_network.BatchedEngine` arena; rows
        byte-identical to the per-cell path): ``None`` (the default)
        batches everywhere -- in-process at ``jobs == 1``, and through
        the graph-affine scheduler of
        :mod:`repro.campaign.scheduler` at ``jobs > 1``, where each
        persistent worker batches the work units it leases.  ``False``
        forces the per-cell paths (serial, or the legacy process pool).
        """
        scenarios = list(scenarios)
        for position, scenario in enumerate(scenarios):
            if not isinstance(scenario, Scenario):
                raise ConfigurationError(
                    f"run_many expects Scenario instances, got "
                    f"{type(scenario).__name__} at position {position}"
                )
        outcomes: List[Optional[ScenarioOutcome]] = [None] * len(scenarios)
        for verify in (True, False):
            # Scenario coerces verify to a bool, so the two partitions
            # cover every input.
            positions = [
                index for index, s in enumerate(scenarios) if s.verify is verify
            ]
            if not positions:
                continue
            report = self._execute(
                [scenarios[index] for index in positions],
                verify=verify,
                jobs=jobs,
                batch=batch,
            )
            for index, outcome in zip(positions, self._outcomes_of(report)):
                outcomes[index] = outcome
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def report(
        self,
        output: Optional[str] = None,
        title: str = "EXPERIMENTS",
        full_rescan: bool = False,
    ) -> str:
        """Render the campaign analysis report over this runner's store.

        Aggregates every row the store holds -- across all ``run`` /
        ``run_many`` calls that shared it -- into per-family tables,
        power-law scaling fits and the Theorem 3.1/3.2 bound audit (see
        :mod:`repro.analysis.report`).  When ``output`` is given the
        markdown document is also written to that path.  Returns the
        rendered markdown.
        """
        from ..analysis.report import write_report

        return write_report(self.store, output=output, title=title, full_rescan=full_rescan)

    def stream(self, scenarios: Iterable[Scenario]) -> Iterator[ScenarioOutcome]:
        """Lazily execute scenarios one by one, yielding each outcome.

        The scenarios share this runner's store, so repeated graphs hit
        the description cache and duplicate scenarios resume instead of
        re-simulating.  Useful for driving a sweep from a generator or
        reacting to outcomes mid-flight.
        """
        for scenario in scenarios:
            yield self.run(scenario)

    # -- internals -------------------------------------------------------

    def _execute(
        self,
        scenarios: List[Scenario],
        verify: bool,
        jobs: int,
        batch: Optional[bool] = None,
    ) -> CampaignReport:
        campaign = Campaign(
            name="api-runner",
            specs=[scenario.to_run_spec() for scenario in scenarios],
            verify=verify,
        )
        return execute_campaign(
            campaign,
            store=self.store,
            jobs=jobs,
            resume=self.resume,
            compute_diameter=self.compute_diameter,
            observers=self.hooks,
            batch=batch,
        )

    def _outcomes_of(self, report: CampaignReport) -> List[ScenarioOutcome]:
        store = report.store
        assert store is not None
        reused = set(report.reused_indexes)
        outcomes = []
        for index, (spec, row) in enumerate(zip(report.campaign.specs, report.rows)):
            outcomes.append(
                ScenarioOutcome(
                    scenario=Scenario.from_run_spec(spec, verify=report.campaign.verify),
                    row=row,
                    result=store.get_result(spec.run_key()),
                    reused=index in reused,
                )
            )
        return outcomes
