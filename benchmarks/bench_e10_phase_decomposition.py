"""E10 (Equation (1)): the per-phase decomposition of the second phase.

Paper claim: each Boruvka phase over the base forest costs
O(D + k + n/k) rounds, the number of coarse fragments at least halves
every phase, and there are at most O(log n) phases, giving the overall
O((D + sqrt(n)) log n) round bound.  We instrument one run per family and
report the per-phase telemetry.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.elkin_mst import compute_mst
from repro.graphs import graph_summary, grid_graph, hub_path_graph, random_connected_graph
from repro.verify.mst_checks import verify_mst_result


def test_e10_phase_decomposition(benchmark, record):
    instances = [
        ("random n=320", random_connected_graph(320, seed=181)),
        ("grid 16x20", grid_graph(16, 20, seed=182)),
        ("hub+path n=320", hub_path_graph(320)),
    ]

    def run():
        rows = []
        for label, graph in instances:
            summary = graph_summary(graph)
            result = compute_mst(graph)
            verify_mst_result(graph, result)
            k = result.details["k"]
            per_phase_bound = 40 * (summary.hop_diameter + k + summary.n / k) + 40
            for phase in result.phases:
                rows.append(
                    {
                        "graph": label,
                        "phase": phase.phase,
                        "fragments before": phase.fragments_before,
                        "fragments after": phase.fragments_after,
                        "rounds": phase.rounds,
                        "phase round bound": round(per_phase_bound),
                        "messages": phase.messages,
                        "halved": phase.fragments_after <= (phase.fragments_before + 1) // 2,
                    }
                )
            rows.append(
                {
                    "graph": label,
                    "phase": "total",
                    "fragments before": result.details["base_fragment_count"],
                    "fragments after": 1,
                    "rounds": result.rounds,
                    "messages": result.messages,
                    "halved": True,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record("E10: per-phase decomposition (Equation (1))", rows)
    phase_rows = [row for row in rows if row["phase"] != "total"]
    assert all(row["halved"] for row in phase_rows)
    assert all(row["rounds"] <= row["phase round bound"] for row in phase_rows)
    # O(log n) phases per instance.
    for label in {row["graph"] for row in phase_rows}:
        count = sum(1 for row in phase_rows if row["graph"] == label)
        assert count <= 10
