"""E6 (Theorem 3.2): CONGEST(b log n) -- rounds scale like (D + sqrt(n/b)) log n,
messages stay within the same near-linear bound for every b.

Ported onto the campaign layer: the bandwidth axis is expressed as a
grid over one inline graph spec, and the theorem-bound ratio columns
(``round_ratio`` / ``message_ratio``) come straight from the campaign
rows instead of being recomputed here.
"""

from __future__ import annotations

from conftest import run_once

from repro.campaign import Campaign, execute_campaign
from repro.campaign.spec import inline_graph_spec
from repro.graphs import graph_summary, random_connected_graph


def test_e6_bandwidth_sweep(benchmark, record):
    graph = random_connected_graph(360, seed=151)
    summary = graph_summary(graph)
    assert summary.n == 360
    campaign = Campaign.from_grid(
        "bench-e6-bandwidth",
        graphs=[inline_graph_spec(graph)],
        bandwidths=(1, 2, 4, 8, 16),
        labels=["E6"],
    )

    def run():
        return execute_campaign(campaign, jobs=1).rows

    rows = run_once(benchmark, run)
    record("E6: CONGEST(b log n) bandwidth sweep (Theorem 3.2)", rows)
    assert all(row["round_ratio"] <= 1.0 for row in rows)
    assert all(row["message_ratio"] <= 1.0 for row in rows)
    # More bandwidth never hurts end to end (b = 16 vs b = 1), and the
    # gain is substantial on a low-diameter instance.
    assert rows[-1]["rounds"] < rows[0]["rounds"]
