"""E6 (Theorem 3.2): CONGEST(b log n) -- rounds scale like (D + sqrt(n/b)) log n,
messages stay within the same near-linear bound for every b.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.bounds import elkin_message_bound_formula, elkin_time_bound_formula
from repro.analysis.experiments import sweep_bandwidth
from repro.graphs import graph_summary, random_connected_graph


def test_e6_bandwidth_sweep(benchmark, record):
    graph = random_connected_graph(360, seed=151)
    summary = graph_summary(graph)
    bandwidths = (1, 2, 4, 8, 16)

    def run():
        return sweep_bandwidth(graph, bandwidths=bandwidths, label="E6")

    rows = run_once(benchmark, run)
    for row in rows:
        b = int(row["bandwidth"])
        bound = elkin_time_bound_formula(summary.n, summary.hop_diameter, bandwidth=b)
        row["round bound"] = round(bound)
        row["round ratio"] = round(row["rounds"] / bound, 3)
        row["message ratio"] = round(
            row["messages"] / elkin_message_bound_formula(summary.n, summary.m), 3
        )
    record("E6: CONGEST(b log n) bandwidth sweep (Theorem 3.2)", rows)
    assert all(row["round ratio"] <= 1.0 for row in rows)
    assert all(row["message ratio"] <= 1.0 for row in rows)
    # More bandwidth never hurts end to end (b = 16 vs b = 1), and the
    # gain is substantial on a low-diameter instance.
    assert rows[-1]["rounds"] < rows[0]["rounds"]
