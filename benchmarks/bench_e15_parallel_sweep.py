"""E15 (engineering): the batched-parallel scheduler on the workload zoo.

Like E11/E12, this benchmark measures the harness rather than the
paper: a zoo-scale sweep (the ``zoo`` preset, several hundred cells)
run through the batched-parallel scheduler
(:mod:`repro.campaign.scheduler`: graph-affine work units leased to
persistent workers, each batching locally, worker-local shard stores
folded back) must be at least 2x faster than the legacy per-cell
process pool at the *same* job count, while the merged rows stay
byte-identical to a serial sweep.  The speedup is pure overhead
amortization -- per-unit graph builds, oracles and descriptions, plus
one worker lifecycle per campaign instead of one pool per phase -- so
the simulations themselves are identical executions.

Set ``REPRO_E15_WRITE_JSON=path`` to also dump the measured rows as
JSON (the checked-in ``BENCH_E15.json`` is produced this way).
"""

from __future__ import annotations

import gc
import json
import os
import time

from conftest import run_once

from repro.campaign import execute_campaign, preset_campaign

REPETITIONS = 2
#: Worker count of the measured parallel paths.
JOBS = int(os.environ.get("REPRO_E15_JOBS", "4"))
#: Hard floor for the scheduler-vs-pool speedup assertion.  The 2x
#: target (the tentpole acceptance bar) holds on controlled hardware;
#: shared CI runners can override it downwards (the measured ratio is
#: always recorded in extra_info either way).
MIN_SPEEDUP = float(os.environ.get("REPRO_E15_MIN_SPEEDUP", "2.0"))


def _sweep(campaign, jobs, batch):
    return execute_campaign(campaign, jobs=jobs, batch=batch, resume=False)


def _best_of(function, *args):
    """Minimum wall-clock over REPETITIONS runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(REPETITIONS):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = function(*args)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def test_e15_parallel_sweep_throughput(benchmark, record):
    campaign = preset_campaign("zoo")
    assert len(campaign) >= 100

    def run():
        # Warm every import and generator path before timing (forked
        # workers inherit the warm state).
        _sweep(campaign, 1, True)

        serial_seconds, serial_report = _best_of(_sweep, campaign, 1, True)
        pool_seconds, pool_report = _best_of(_sweep, campaign, JOBS, False)
        sched_seconds, sched_report = _best_of(_sweep, campaign, JOBS, None)
        rows = [
            {
                "executor": name,
                "jobs": jobs,
                "cells": len(report.rows),
                "seconds": round(seconds, 3),
                "cells/s": round(len(report.rows) / seconds, 1),
            }
            for name, jobs, seconds, report in (
                ("batched in-process", 1, serial_seconds, serial_report),
                (f"per-cell pool-{JOBS}", JOBS, pool_seconds, pool_report),
                (f"scheduler batched-pool-{JOBS}", JOBS, sched_seconds, sched_report),
            )
        ]
        return (
            rows,
            serial_seconds,
            pool_seconds,
            sched_seconds,
            serial_report,
            pool_report,
            sched_report,
        )

    (
        rows,
        serial_seconds,
        pool_seconds,
        sched_seconds,
        serial_report,
        pool_report,
        sched_report,
    ) = run_once(benchmark, run)

    pool_speedup = pool_seconds / sched_seconds
    serial_speedup = serial_seconds / sched_seconds
    rows[1]["speedup vs scheduler"] = round(1 / pool_speedup, 2)
    rows[2]["speedup vs pool"] = round(pool_speedup, 2)
    rows[2]["speedup vs serial"] = round(serial_speedup, 2)
    benchmark.extra_info["cells"] = len(campaign)
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["scheduler_speedup_vs_pool"] = round(pool_speedup, 3)
    benchmark.extra_info["scheduler_speedup_vs_serial"] = round(serial_speedup, 3)
    benchmark.extra_info["worker_stats"] = sched_report.worker_stats
    record(
        f"E15: parallel zoo sweep (scheduler vs per-cell pool at jobs={JOBS})", rows
    )

    json_path = os.environ.get("REPRO_E15_WRITE_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": (
                        f"E15: parallel zoo sweep (scheduler vs per-cell pool "
                        f"at jobs={JOBS})"
                    ),
                    "jobs": JOBS,
                    "min_speedup_floor": MIN_SPEEDUP,
                    "worker_stats": sched_report.worker_stats,
                    "rows": rows,
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    # Byte-identical rows: the scheduler buys wall-clock time only.
    assert sched_report.rows == serial_report.rows
    assert sched_report.rows == pool_report.rows
    assert sched_report.workers == JOBS
    assert (
        pool_speedup >= MIN_SPEEDUP
    ), f"scheduler speedup {pool_speedup:.2f}x below the {MIN_SPEEDUP}x floor vs pool-{JOBS}"
