"""E11 (engineering): wall-clock throughput of the fast kernel.

Unlike E1-E10, which reproduce the paper's complexity claims, this
benchmark measures the simulator itself: the batched ``fast`` engine
must beat the readable ``reference`` engine by >= 3x wall-clock on a
message-heavy workload while reporting *identical* round / message /
word counters (the complexity numbers may never depend on the engine).

Two workloads are timed:

* a kernel-level flood in the style of E4's message-heavy instances
  (every vertex pushes one word to every neighbour, every round) --
  this isolates the ``send`` / ``deliver_round`` hot path the fast
  kernel batches;
* the full paper algorithm (``compute_mst``) on an E4-style graph --
  protocol bookkeeping dilutes the kernel share here, so the speedup is
  smaller but must still be > 1.
"""

from __future__ import annotations

import gc
import os
import time

from conftest import run_once

from repro.config import RunConfig
from repro.core.elkin_mst import compute_mst
from repro.graphs import random_connected_graph
from repro.simulator.engine import create_engine

#: E4-style message-heavy instance: dense-ish random connected graph.
N = 192
EXTRA_EDGES = 8 * N
FLOOD_ROUNDS = 40
REPETITIONS = 3
#: Hard floor for the kernel speedup assertion.  The 3x target holds on
#: controlled hardware; shared CI runners can override it downwards
#: (the measured ratio is always recorded in extra_info either way).
MIN_KERNEL_SPEEDUP = float(os.environ.get("REPRO_E11_MIN_SPEEDUP", "3.0"))


def _flood_workload(graph, send_list, engine):
    """Every vertex sends one word to every neighbour, FLOOD_ROUNDS times."""
    network = create_engine(graph, bandwidth=1, validate=False, engine=engine)
    send = network.send
    for _ in range(FLOOD_ROUNDS):
        for sender, receiver in send_list:
            send(sender, receiver, "flood", (sender,), 1)
        network.deliver_round()
    return network.total_cost()


def _best_of(function, *args):
    """Minimum wall-clock over REPETITIONS runs (and the last return value).

    The collector is paused around each timed run: under pytest's large
    heap, GC pauses land arbitrarily in either engine's run and would
    otherwise dominate the comparison noise.
    """
    best = float("inf")
    value = None
    for _ in range(REPETITIONS):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = function(*args)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def test_e11_engine_throughput(benchmark, record):
    graph = random_connected_graph(N, extra_edges=EXTRA_EDGES, seed=1101)
    probe = create_engine(graph, validate=False, engine="reference")
    send_list = [
        (vertex, neighbor)
        for vertex in probe.vertices()
        for neighbor in probe.node(vertex).neighbors
    ]

    def run():
        # Warm both code paths before timing.
        for engine in ("reference", "fast"):
            create_engine(graph, validate=False, engine=engine)

        rows = []
        kernel = {}
        for engine in ("reference", "fast"):
            seconds, cost = _best_of(_flood_workload, graph, send_list, engine)
            kernel[engine] = (seconds, cost)
            rows.append(
                {
                    "workload": "kernel flood",
                    "engine": engine,
                    "seconds": round(seconds, 4),
                    "rounds": cost.rounds,
                    "messages": cost.messages,
                    "words": cost.words,
                }
            )

        full = {}
        for engine in ("reference", "fast"):
            config = RunConfig(engine=engine)
            seconds, result = _best_of(compute_mst, graph, config)
            full[engine] = (seconds, result)
            rows.append(
                {
                    "workload": "compute_mst",
                    "engine": engine,
                    "seconds": round(seconds, 4),
                    "rounds": result.rounds,
                    "messages": result.messages,
                    "words": result.cost.words,
                }
            )
        return rows, kernel, full

    rows, kernel, full = run_once(benchmark, run)

    kernel_speedup = kernel["reference"][0] / kernel["fast"][0]
    full_speedup = full["reference"][0] / full["fast"][0]
    for row in rows:
        row["speedup vs reference"] = round(
            kernel_speedup if row["workload"] == "kernel flood" else full_speedup, 2
        )

    benchmark.extra_info["kernel_speedup"] = round(kernel_speedup, 3)
    benchmark.extra_info["compute_mst_speedup"] = round(full_speedup, 3)
    record("E11: engine throughput (fast vs reference kernel)", rows)

    # The two kernels must report byte-identical counters ...
    assert kernel["reference"][1] == kernel["fast"][1]
    reference_result, fast_result = full["reference"][1], full["fast"][1]
    assert reference_result.edges == fast_result.edges
    assert reference_result.cost == fast_result.cost
    # ... and the batched kernel must actually be fast.
    assert kernel_speedup >= MIN_KERNEL_SPEEDUP, (
        f"kernel speedup {kernel_speedup:.2f}x < {MIN_KERNEL_SPEEDUP}x"
    )
    assert full_speedup > 1.0, f"end-to-end speedup {full_speedup:.2f}x <= 1x"
