"""E2 (Theorem 4.3, cost): Controlled-GHS runs in O(k log* n) rounds and
O(m log k + n log k log* n) messages.

Paper claim: the base-forest construction time grows (near-)linearly in k
and its message count grows only logarithmically in k.  We sweep k on a
fixed graph and n at fixed k and report measured/bound ratios.
"""

from __future__ import annotations

from conftest import engine_name, run_once

from repro.analysis.bounds import controlled_ghs_message_bound, controlled_ghs_time_bound
from repro.core.controlled_ghs import build_base_forest
from repro.graphs import random_connected_graph
from repro.simulator.engine import create_engine


def test_e2_cost_scaling(benchmark, record):
    def run():
        rows = []
        # Sweep k at fixed n.
        graph = random_connected_graph(240, seed=111)
        n, m = graph.number_of_nodes(), graph.number_of_edges()
        for k in (4, 8, 16, 32):
            network = create_engine(graph, engine=engine_name())
            result = build_base_forest(network, k)
            rows.append(
                {
                    "sweep": "k",
                    "n": n,
                    "k": k,
                    "rounds": result.cost.rounds,
                    "round bound": round(controlled_ghs_time_bound(n, k)),
                    "messages": result.cost.messages,
                    "message bound": round(controlled_ghs_message_bound(n, m, k)),
                }
            )
        # Sweep n at fixed k.
        for n in (80, 160, 320):
            graph = random_connected_graph(n, seed=112)
            m = graph.number_of_edges()
            network = create_engine(graph, engine=engine_name())
            result = build_base_forest(network, 8)
            rows.append(
                {
                    "sweep": "n",
                    "n": n,
                    "k": 8,
                    "rounds": result.cost.rounds,
                    "round bound": round(controlled_ghs_time_bound(n, 8)),
                    "messages": result.cost.messages,
                    "message bound": round(controlled_ghs_message_bound(n, m, 8)),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record("E2: Controlled-GHS cost (Theorem 4.3)", rows)
    assert all(row["rounds"] <= row["round bound"] for row in rows)
    assert all(row["messages"] <= row["message bound"] for row in rows)
    # Round counts grow with k (linearly up to constants); message counts
    # must grow much slower than linearly in k (log k).
    k_rows = [row for row in rows if row["sweep"] == "k"]
    assert k_rows[-1]["rounds"] > k_rows[0]["rounds"]
    assert k_rows[-1]["messages"] < 4 * k_rows[0]["messages"]
