"""E14 (engineering): wall-clock throughput of the numpy array kernel.

Like E11 this benchmark measures the simulator, not the paper: the
``array`` engine (structure-of-arrays message columns, vectorized
broadcasts, lazily materialized inboxes) must beat the ``fast`` engine
on message-heavy workloads while reporting *identical* round / message /
word counters.  Three workloads are timed:

* a broadcast storm at three sizes (random regular graphs, every vertex
  broadcasting to its whole neighbourhood every round) where receivers
  consume inbox *sizes* -- the synchronizer / heartbeat pattern the
  lazy-inbox design is built for.  This is the floored comparison: the
  measured speedup must clear ``REPRO_E14_MIN_SPEEDUP`` (default 4x;
  the 10x design target is met at the largest size on controlled
  hardware) at every size;
* the same storm where receivers *read every message*, which forces full
  FastMessage materialization -- recorded, no floor, because this is
  exactly the fast kernel's own per-message cost plus grouping;
* the full paper algorithm (``compute_mst``) on an E4-style instance --
  protocol rounds are small and point-send-heavy, so the array kernel
  tracks the fast kernel rather than beating it; recorded for honesty.

Engine construction (NodeState tables, CSR layout) happens outside the
timed region: both kernels pay the same O(n + m) setup once per sweep
cell, while the quantity optimized -- and measured here -- is the cost
of simulated communication rounds.

Set ``REPRO_E14_WRITE_JSON=path`` to also dump the measured rows as
JSON (the checked-in ``BENCH_E14.json`` is produced this way).
"""

from __future__ import annotations

import gc
import json
import os
import time

from conftest import run_once

from repro.config import RunConfig
from repro.core.elkin_mst import compute_mst
from repro.graphs import random_connected_graph
from repro.graphs.generators import make_graph
from repro.simulator.engine import create_engine

#: (n, storm rounds) per size; degree keeps the storm message-heavy.
SIZES = ((512, 20), (2048, 8), (8192, 3))
DEGREE = 32
REPETITIONS = 3
#: Hard floor for the broadcast-storm speedup assertion at every size.
#: Controlled hardware measures 5-10x (rising with n); shared CI
#: runners can override downwards, the measured ratios are always
#: recorded in extra_info either way.
MIN_SPEEDUP = float(os.environ.get("REPRO_E14_MIN_SPEEDUP", "4.0"))


def _storm(network, vertices, rounds, read_messages):
    """Every vertex broadcasts one word to its whole neighbourhood."""
    send_to_neighbors = network.send_to_neighbors
    deliver_round = network.deliver_round
    consumed = 0
    for _ in range(rounds):
        for vertex in vertices:
            send_to_neighbors(vertex, "pulse", (), 1)
        inboxes = deliver_round()
        if read_messages:
            for inbox in inboxes.values():
                for message in inbox:
                    consumed += message.words
        else:
            for inbox in inboxes.values():
                consumed += len(inbox)
    return network.total_cost(), consumed


def _best_of(function, *args):
    """Minimum wall-clock over REPETITIONS runs (and the last return value).

    The collector is paused around each timed run, as in E11: under
    pytest's large heap, GC pauses land arbitrarily in either engine's
    run.  (This is conservative -- with the collector running the array
    kernel's margin *grows*, because avoiding per-message allocation is
    exactly what the structure-of-arrays layout buys.)
    """
    best = float("inf")
    value = None
    for _ in range(REPETITIONS):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = function(*args)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def _timed_storm(graph, engine, rounds, read_messages):
    """Best-of-REPETITIONS storm timing on a fresh, untimed engine per run."""
    best = float("inf")
    value = None
    for _ in range(REPETITIONS):
        network = create_engine(graph, bandwidth=1, validate=False, engine=engine)
        vertices = list(network.vertices())
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = _storm(network, vertices, rounds, read_messages)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def test_e14_array_engine_throughput(benchmark, record):
    graphs = {
        n: make_graph("random_regular", n=n, degree=DEGREE, seed=1400)
        for n, _ in SIZES
    }
    mst_graph = random_connected_graph(192, extra_edges=8 * 192, seed=1402)

    def run():
        rows = []
        floored = []

        for n, rounds in SIZES:
            cell = {}
            for engine in ("fast", "array"):
                seconds, (cost, consumed) = _timed_storm(
                    graphs[n], engine, rounds, read_messages=False
                )
                cell[engine] = (seconds, cost, consumed)
                rows.append(
                    {
                        "workload": "storm (aggregate)",
                        "n": n,
                        "engine": engine,
                        "seconds": round(seconds, 4),
                        "rounds": cost.rounds,
                        "messages": cost.messages,
                        "words": cost.words,
                    }
                )
            speedup = cell["fast"][0] / cell["array"][0]
            floored.append((n, speedup))
            for row in rows[-2:]:
                row["speedup vs fast"] = round(speedup, 2)
            # Byte-identical counters and identical consumer observations.
            assert cell["fast"][1] == cell["array"][1]
            assert cell["fast"][2] == cell["array"][2]

        n, rounds = SIZES[1]
        read = {}
        for engine in ("fast", "array"):
            seconds, (cost, consumed) = _timed_storm(
                graphs[n], engine, rounds, read_messages=True
            )
            read[engine] = (seconds, cost, consumed)
            rows.append(
                {
                    "workload": "storm (full read)",
                    "n": n,
                    "engine": engine,
                    "seconds": round(seconds, 4),
                    "rounds": cost.rounds,
                    "messages": cost.messages,
                    "words": cost.words,
                }
            )
        read_speedup = read["fast"][0] / read["array"][0]
        for row in rows[-2:]:
            row["speedup vs fast"] = round(read_speedup, 2)
        assert read["fast"][1] == read["array"][1]
        assert read["fast"][2] == read["array"][2]

        full = {}
        for engine in ("fast", "array"):
            seconds, result = _best_of(compute_mst, mst_graph, RunConfig(engine=engine))
            full[engine] = (seconds, result)
            rows.append(
                {
                    "workload": "compute_mst",
                    "n": mst_graph.number_of_nodes(),
                    "engine": engine,
                    "seconds": round(seconds, 4),
                    "rounds": result.rounds,
                    "messages": result.messages,
                    "words": result.cost.words,
                }
            )
        full_speedup = full["fast"][0] / full["array"][0]
        for row in rows[-2:]:
            row["speedup vs fast"] = round(full_speedup, 2)
        assert full["fast"][1].edges == full["array"][1].edges
        assert full["fast"][1].cost == full["array"][1].cost

        return rows, floored, read_speedup, full_speedup

    rows, floored, read_speedup, full_speedup = run_once(benchmark, run)

    for n, speedup in floored:
        benchmark.extra_info[f"storm_speedup_n{n}"] = round(speedup, 3)
    benchmark.extra_info["full_read_speedup"] = round(read_speedup, 3)
    benchmark.extra_info["compute_mst_speedup"] = round(full_speedup, 3)
    record("E14: array-engine throughput (array vs fast kernel)", rows)

    json_path = os.environ.get("REPRO_E14_WRITE_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": "E14: array-engine throughput (array vs fast kernel)",
                    "degree": DEGREE,
                    "min_speedup_floor": MIN_SPEEDUP,
                    "rows": rows,
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    for n, speedup in floored:
        assert speedup >= MIN_SPEEDUP, (
            f"storm speedup at n={n} is {speedup:.2f}x < {MIN_SPEEDUP}x"
        )
