"""E7 (vs. GKP98/KP98): Garay-Kutten-Peleg spends Theta(m + n^{3/2}) messages;
the paper's algorithm stays near-linear (times log factors).

Paper claim (Table-of-prior-work / introduction): both algorithms are
near-time-optimal on low-diameter graphs, but GKP's Pipeline-MST phase
sends ~ n^{3/2} messages while the paper's algorithm sends
~ m log n + n log n log* n.  On sparse graphs the message gap therefore
widens as n grows.  We sweep n, compare the dedicated pipeline stage
against the paper's whole second phase, and fit growth exponents.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.fitting import fit_power_law
from repro.baselines import gkp_mst
from repro.core.elkin_mst import compute_mst
from repro.graphs import random_connected_graph
from repro.verify.mst_checks import verify_mst_result


def test_e7_gkp_message_comparison(benchmark, record):
    sizes = (96, 192, 384)

    def run():
        rows = []
        for n in sizes:
            graph = random_connected_graph(n, extra_edges=n, seed=160 + n)
            elkin = compute_mst(graph)
            gkp = gkp_mst(graph)
            verify_mst_result(graph, elkin)
            verify_mst_result(graph, gkp)
            assert elkin.edges == gkp.edges
            gkp_pipeline = gkp.details["stage_costs"]["pipeline"]["messages"]
            elkin_second = (
                elkin.details["stage_costs"]["boruvka"]["messages"]
                + elkin.details["stage_costs"]["intervals_and_registration"]["messages"]
            )
            rows.append(
                {
                    "n": n,
                    "m": graph.number_of_edges(),
                    "elkin rounds": elkin.rounds,
                    "gkp rounds": gkp.rounds,
                    "elkin messages": elkin.messages,
                    "gkp messages": gkp.messages,
                    "elkin 2nd-phase msgs": elkin_second,
                    "gkp pipeline msgs": gkp_pipeline,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    from repro.analysis.bounds import elkin_message_bound_formula, gkp_message_bound

    elkin_fit = fit_power_law([r["m"] for r in rows], [r["elkin messages"] for r in rows])
    for row in rows:
        row["elkin msg bound"] = round(elkin_message_bound_formula(row["n"], row["m"]))
        row["gkp msg bound"] = round(gkp_message_bound(row["n"], row["m"]))
        row["elkin fit vs m"] = round(elkin_fit.exponent, 2)
    record("E7: message complexity vs Garay-Kutten-Peleg", rows)
    # Both algorithms stay within their respective theoretical envelopes:
    # Elkin's near-linear O(m log n + n log n log* n) and GKP's
    # O(m + n^{3/2}) (plus phase-1 log factors).  The asymptotic gap
    # (n^{3/2} vs near-linear) does not yet separate the *measured*
    # totals at these sizes because GKP's pipeline only saturates its
    # sqrt(n)-per-vertex worst case on adversarial BFS trees; see
    # EXPERIMENTS.md for the discussion.  What must hold is that the
    # paper's algorithm keeps its near-linear shape:
    assert all(row["elkin messages"] <= row["elkin msg bound"] for row in rows)
    assert all(row["gkp messages"] <= row["gkp msg bound"] for row in rows)
    assert elkin_fit.exponent < 1.4
