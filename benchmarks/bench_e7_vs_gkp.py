"""E7 (vs. GKP98/KP98): Garay-Kutten-Peleg spends Theta(m + n^{3/2}) messages;
the paper's algorithm stays near-linear (times log factors).

Paper claim (Table-of-prior-work / introduction): both algorithms are
near-time-optimal on low-diameter graphs, but GKP's Pipeline-MST phase
sends ~ n^{3/2} messages while the paper's algorithm sends
~ m log n + n log n log* n.  On sparse graphs the message gap therefore
widens as n grows.

Ported onto the campaign layer: the (size x algorithm) sweep is one
campaign grid, and the per-stage message split is read back from the
full results the run store keeps for every cell.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.fitting import fit_power_law
from repro.campaign import Campaign, execute_campaign
from repro.graphs import GraphSpec


def test_e7_gkp_message_comparison(benchmark, record):
    sizes = (96, 192, 384)
    graphs = [
        GraphSpec("random_connected", {"n": n, "extra_edges": n, "seed": 160 + n})
        for n in sizes
    ]
    campaign = Campaign.from_grid("bench-e7-vs-gkp", graphs, algorithms=("elkin", "gkp"))

    def run():
        return execute_campaign(campaign, jobs=1)

    report = run_once(benchmark, run)
    results = {
        (spec.graph.params["n"], spec.algorithm): report.store.get_result(spec.run_key())
        for spec in campaign.specs
    }
    rows = []
    for n in sizes:
        elkin = results[(n, "elkin")]
        gkp = results[(n, "gkp")]
        assert elkin.edges == gkp.edges
        gkp_pipeline = gkp.details["stage_costs"]["pipeline"]["messages"]
        elkin_second = (
            elkin.details["stage_costs"]["boruvka"]["messages"]
            + elkin.details["stage_costs"]["intervals_and_registration"]["messages"]
        )
        rows.append(
            {
                "n": n,
                "m": elkin.m,
                "elkin rounds": elkin.rounds,
                "gkp rounds": gkp.rounds,
                "elkin messages": elkin.messages,
                "gkp messages": gkp.messages,
                "elkin 2nd-phase msgs": elkin_second,
                "gkp pipeline msgs": gkp_pipeline,
            }
        )
    from repro.analysis.bounds import elkin_message_bound_formula, gkp_message_bound

    elkin_fit = fit_power_law([r["m"] for r in rows], [r["elkin messages"] for r in rows])
    for row in rows:
        row["elkin msg bound"] = round(elkin_message_bound_formula(row["n"], row["m"]))
        row["gkp msg bound"] = round(gkp_message_bound(row["n"], row["m"]))
        row["elkin fit vs m"] = round(elkin_fit.exponent, 2)
    record("E7: message complexity vs Garay-Kutten-Peleg", rows)
    # Both algorithms stay within their respective theoretical envelopes:
    # Elkin's near-linear O(m log n + n log n log* n) and GKP's
    # O(m + n^{3/2}) (plus phase-1 log factors).  The asymptotic gap
    # (n^{3/2} vs near-linear) does not yet separate the *measured*
    # totals at these sizes because GKP's pipeline only saturates its
    # sqrt(n)-per-vertex worst case on adversarial BFS trees; see
    # EXPERIMENTS.md for the discussion.  What must hold is that the
    # paper's algorithm keeps its near-linear shape:
    assert all(row["elkin messages"] <= row["elkin msg bound"] for row in rows)
    assert all(row["gkp messages"] <= row["gkp msg bound"] for row in rows)
    assert elkin_fit.exponent < 1.4
