"""E5 (Theorem 3.1, large-D regime): O(D log n) rounds, near-linear messages
when D > sqrt(n).

Paper claim: on high-diameter graphs the algorithm switches to k = D;
its running time becomes O(D log n) and -- the paper's key improvement --
its message complexity stays near-linear instead of picking up a
Theta(D sqrt(n)) term.  We run paths, grids and lollipops and check both
bounds; E9 contrasts the message behaviour with the sqrt(n)-base-forest
strategy.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.bounds import elkin_message_bound_formula, log2_ceil
from repro.core.elkin_mst import compute_mst
from repro.graphs import graph_summary, grid_graph, lollipop_graph, path_graph
from repro.verify.mst_checks import verify_mst_result


def test_e5_high_diameter_graphs(benchmark, record):
    instances = [
        ("path n=256", path_graph(256, seed=141)),
        ("path n=400", path_graph(400, seed=142)),
        ("grid 4x64", grid_graph(4, 64, seed=143)),
        ("lollipop 12+200", lollipop_graph(12, 200, seed=144)),
    ]

    def run():
        rows = []
        for label, graph in instances:
            summary = graph_summary(graph)
            result = compute_mst(graph)
            verify_mst_result(graph, result)
            d_log_n = summary.hop_diameter * log2_ceil(summary.n)
            message_bound = elkin_message_bound_formula(summary.n, summary.m)
            rows.append(
                {
                    "graph": label,
                    "n": summary.n,
                    "m": summary.m,
                    "D": summary.hop_diameter,
                    "k": result.details["k"],
                    "rounds": result.rounds,
                    "rounds / (D log n)": round(result.rounds / d_log_n, 2),
                    "messages": result.messages,
                    "message ratio": round(result.messages / message_bound, 3),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record("E5: the D > sqrt(n) regime (k = D)", rows)
    # O(D log n) rounds with a modest constant, and messages within the
    # near-linear theorem bound on every high-diameter instance.
    assert all(row["rounds / (D log n)"] <= 12 for row in rows)
    assert all(row["message ratio"] <= 1.0 for row in rows)
    # The regime switch actually happened: k tracks D, not sqrt(n).
    assert all(row["k"] * row["k"] >= row["n"] for row in rows)
