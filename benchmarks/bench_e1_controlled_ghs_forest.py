"""E1 (Theorem 4.3, structure): Controlled-GHS returns an (n/k, O(k))-MST forest.

Paper claim: for any k, the base-forest construction produces at most
O(n/k) fragments, each of strong diameter O(k), and every fragment is a
subtree of the MST.  We sweep k over several graph families and report
the measured fragment count and maximum diameter next to the bounds
(constants 4 and 12, from Lemmas 4.1/4.2).
"""

from __future__ import annotations

from conftest import engine_name, run_once

from repro.core.controlled_ghs import build_base_forest
from repro.graphs import grid_graph, path_graph, random_connected_graph
from repro.simulator.engine import create_engine
from repro.verify.forest_checks import ALPHA_CONSTANT, assert_alpha_beta_forest, BETA_CONSTANT


def test_e1_forest_shape(benchmark, record):
    instances = [
        ("random n=200", random_connected_graph(200, seed=101)),
        ("grid 12x16", grid_graph(12, 16, seed=102)),
        ("path n=180", path_graph(180, seed=103)),
    ]
    ks = [4, 8, 16, 32]

    def run():
        rows = []
        for label, graph in instances:
            for k in ks:
                network = create_engine(graph, engine=engine_name())
                result = build_base_forest(network, k)
                assert_alpha_beta_forest(graph, result.forest, k)
                rows.append(
                    {
                        "graph": label,
                        "k": k,
                        "fragments": result.forest.count,
                        "fragment bound": round(max(1, ALPHA_CONSTANT * graph.number_of_nodes() / k)),
                        "max diameter": result.forest.max_diameter(),
                        "diameter bound": round(BETA_CONSTANT * k),
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    record("E1: (n/k, O(k))-MST forest structure (Theorem 4.3)", rows)
    assert all(row["fragments"] <= row["fragment bound"] for row in rows)
    assert all(row["max diameter"] <= row["diameter bound"] for row in rows)
