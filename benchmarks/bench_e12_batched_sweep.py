"""E12 (engineering): batched multi-scenario execution on the workload zoo.

Like E11, this benchmark measures the harness rather than the paper: a
zoo-scale sweep (the ``zoo`` preset: every registered graph family plus
the dense differential-stress grid, several hundred cells) must run at
least 2x faster through the batched executor -- one
:class:`~repro.simulator.fast_network.BatchedEngine` arena, one graph
build, one verification oracle and one instance description per
distinct graph -- than through the per-cell serial path, while
producing *byte-identical* rows.  The speedup is pure overhead
amortization: the simulations themselves are identical executions.
"""

from __future__ import annotations

import gc
import os
import time

from conftest import run_once

from repro.campaign import execute_campaign, preset_campaign

REPETITIONS = 3
#: Hard floor for the batched-sweep speedup assertion.  The 2x target
#: (the tentpole acceptance bar) holds on controlled hardware; shared CI
#: runners can override it downwards (the measured ratio is always
#: recorded in extra_info either way).
MIN_BATCH_SPEEDUP = float(os.environ.get("REPRO_E12_MIN_SPEEDUP", "2.0"))


def _sweep(campaign, batch):
    return execute_campaign(campaign, batch=batch, resume=False)


def _best_of(function, *args):
    """Minimum wall-clock over REPETITIONS runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(REPETITIONS):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = function(*args)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def test_e12_batched_sweep_throughput(benchmark, record):
    campaign = preset_campaign("zoo")
    assert len(campaign) >= 100  # the zoo is a zoo, not a terrarium

    def run():
        # Warm every import and generator path before timing.
        _sweep(campaign, batch=True)

        serial_seconds, serial_report = _best_of(_sweep, campaign, False)
        batched_seconds, batched_report = _best_of(_sweep, campaign, True)
        rows = [
            {
                "executor": name,
                "cells": len(report.rows),
                "seconds": round(seconds, 3),
                "cells/s": round(len(report.rows) / seconds, 1),
            }
            for name, seconds, report in (
                ("serial per-cell", serial_seconds, serial_report),
                ("batched", batched_seconds, batched_report),
            )
        ]
        return rows, serial_seconds, batched_seconds, serial_report, batched_report

    rows, serial_seconds, batched_seconds, serial_report, batched_report = run_once(
        benchmark, run
    )

    speedup = serial_seconds / batched_seconds
    for row in rows:
        row["speedup vs serial"] = round(speedup, 2)
    benchmark.extra_info["cells"] = len(campaign)
    benchmark.extra_info["batched_speedup"] = round(speedup, 3)
    record("E12: batched zoo sweep (batched vs serial per-cell)", rows)

    # Byte-identical rows: batching buys wall-clock time only.
    assert serial_report.rows == batched_report.rows
    assert (
        speedup >= MIN_BATCH_SPEEDUP
    ), f"batched sweep speedup {speedup:.2f}x below the {MIN_BATCH_SPEEDUP}x floor"
