"""E16 (engineering): overhead of the network-condition wrapper seam.

Like E11/E15, this benchmark measures the harness rather than the
paper: threading ``condition`` through the execution stack must be free
when no condition is active.  Two costs are separated:

* **seam overhead** -- a sweep with ``condition=None`` never installs
  the wrapper at all; its wall-clock must be indistinguishable from
  the pre-conditions executor (this is the row pair asserted on);
* **pass-through overhead** -- a sweep under an installed but *no-op*
  :class:`~repro.conditions.NetworkCondition` wraps every engine in a
  :class:`~repro.conditions.ConditionedEngine` whose ``deliver_round``
  detects ``is_noop()`` and delegates without touching a single
  message.  The proxy indirection (one extra Python frame per round
  plus the delegated send-side calls) must stay within
  ``REPRO_E16_MAX_OVERHEAD`` (default 10%) of the bare sweep.

An active-condition row (the ``lossy`` preset) is recorded for context
-- per-message fate hashing is real work and is *not* bounded here.

Set ``REPRO_E16_WRITE_JSON=path`` to dump the measured rows as JSON
(the checked-in ``BENCH_E16.json`` is produced this way).
"""

from __future__ import annotations

import gc
import json
import os
import time

from conftest import run_once

from repro.campaign import execute_campaign, preset_campaign
from repro.conditions import NetworkCondition

REPETITIONS = 3
#: Hard ceiling for the pass-through (no-op wrapper) overhead ratio.
#: The 10% target holds on controlled hardware; shared CI runners can
#: loosen it (the measured ratio is always recorded in extra_info).
MAX_OVERHEAD = float(os.environ.get("REPRO_E16_MAX_OVERHEAD", "0.10"))

#: A condition that activates no model: the wrapper installs, every
#: deliver_round takes the is_noop() fast path.
NOOP_CONDITION = NetworkCondition(seed=0)


def _sweep(campaign):
    return execute_campaign(campaign, resume=False, compute_diameter=False)


def _best_of(function, *args):
    """Minimum wall-clock over REPETITIONS runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(REPETITIONS):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = function(*args)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def test_e16_condition_overhead(benchmark, record):
    bare = preset_campaign("zoo")
    assert len(bare) >= 100
    noop = bare.with_condition(NOOP_CONDITION)
    lossy = bare.with_condition("lossy")

    def run():
        _sweep(bare)  # warm imports, generators and the arena path

        bare_seconds, bare_report = _best_of(_sweep, bare)
        noop_seconds, noop_report = _best_of(_sweep, noop)
        lossy_seconds, lossy_report = _best_of(_sweep, lossy)
        return (
            bare_seconds,
            noop_seconds,
            lossy_seconds,
            bare_report,
            noop_report,
            lossy_report,
        )

    (
        bare_seconds,
        noop_seconds,
        lossy_seconds,
        bare_report,
        noop_report,
        lossy_report,
    ) = run_once(benchmark, run)

    overhead = noop_seconds / bare_seconds - 1.0
    rows = [
        {
            "sweep": name,
            "cells": len(report.rows),
            "seconds": round(seconds, 3),
            "cells/s": round(len(report.rows) / seconds, 1),
            "vs bare": f"{seconds / bare_seconds:.3f}x",
        }
        for name, seconds, report in (
            ("bare (condition=None)", bare_seconds, bare_report),
            ("no-op wrapper (pass-through)", noop_seconds, noop_report),
            ("lossy preset (active faults)", lossy_seconds, lossy_report),
        )
    ]
    benchmark.extra_info["cells"] = len(bare)
    benchmark.extra_info["passthrough_overhead"] = round(overhead, 4)
    benchmark.extra_info["max_overhead_ceiling"] = MAX_OVERHEAD
    record("E16: network-condition wrapper overhead on the zoo preset", rows)

    json_path = os.environ.get("REPRO_E16_WRITE_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": (
                        "E16: network-condition wrapper overhead on the zoo preset"
                    ),
                    "max_overhead_ceiling": MAX_OVERHEAD,
                    "passthrough_overhead": round(overhead, 4),
                    "rows": rows,
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    # The wrapped sweep still produces correct MSTs (verification ran),
    # and a no-op condition changes no counter: rounds/messages columns
    # match the bare sweep cell for cell.
    for bare_row, noop_row in zip(bare_report.rows, noop_report.rows):
        assert bare_row["rounds"] == noop_row["rounds"]
        assert bare_row["messages"] == noop_row["messages"]
        assert bare_row["weight"] == noop_row["weight"]
    assert len(lossy_report.rows) == len(bare_report.rows)
    assert overhead <= MAX_OVERHEAD, (
        f"pass-through wrapper overhead {overhead:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} ceiling (bare {bare_seconds:.3f}s, "
        f"no-op {noop_seconds:.3f}s)"
    )
