"""E17 (engineering): report latency, materialized columnar vs JSONL rescan.

``repro-mst report`` over a JSONL store must parse every physical
record -- spec, result (with telemetry) and provenance payloads
included -- before the analysis sees a single row.  The columnar
backend stores the report-facing row projection in its own ``run_rows``
table and keeps the bound-audit counters and power-law sufficient
statistics materialized incrementally at append time, so a report
answers from the row projection alone and the full payloads stay cold
on disk.

This benchmark synthesizes a >=10^5-row store (one real simulated
payload per graph size, replicated across distinct seeds so every
record carries a distinct content-hashed key), renders the report both
ways, and asserts:

* the materialized columnar report clears a >=5x latency floor over the
  full JSONL rescan (``REPRO_E17_MIN_SPEEDUP`` overrides; CI relaxes it
  for shared runners -- never lower it locally to make a PR pass);
* the analyses are *identical* -- materialized vs ``full_rescan=True``
  vs the JSONL backend -- down to the rendered markdown bytes.

``REPRO_E17_WRITE_JSON=<path>`` additionally writes the measured table
(the checked-in ``BENCH_E17.json`` is produced this way).
"""

from __future__ import annotations

import json
import os
import time

from conftest import run_once

from repro.analysis.report import analyze_store, render_markdown
from repro.campaign import ColumnarStore, graph_spec_for, run_spec, RunStore
from repro.campaign.spec import RunSpec

#: Hard floor for the materialized-report-vs-JSONL-rescan latency ratio.
MIN_SPEEDUP = float(os.environ.get("REPRO_E17_MIN_SPEEDUP", "5.0"))
ROWS = int(os.environ.get("REPRO_E17_ROWS", "100000"))
SIZES = (16, 32, 64)


def _payloads():
    """One real (row, result, provenance) payload per graph size.

    Telemetry stays on (the default a sweep records), so the JSONL side
    pays the realistic per-record parse cost.  The bound columns ride
    in the row, so replicating the payload keeps the audit at zero
    violations no matter how many seeds it is stamped onto.
    """
    payloads = []
    for n in SIZES:
        spec = RunSpec(graph=graph_spec_for("random_connected", n, seed=0), algorithm="elkin")
        row, result = run_spec(spec)
        payloads.append((n, row, result.to_json_dict()))
    return payloads


def _populate(store, payloads, count):
    provenance = {"executor": "bench-e17", "verified": True}
    for index in range(count):
        n, row, result_json = payloads[index % len(payloads)]
        spec = RunSpec(
            graph=graph_spec_for("random_connected", n, seed=index),
            algorithm="elkin",
        )
        store.record_run(spec, row, result_json, provenance)
    store.close()


def _timed_report(path, backend_cls, **analyze_kwargs):
    start = time.perf_counter()
    with backend_cls(path, read_only=True) as store:
        analysis = analyze_store(store, **analyze_kwargs)
        document = render_markdown(analysis)
    return time.perf_counter() - start, analysis, document


def test_e17_materialized_report_latency(benchmark, record, tmp_path):
    payloads = _payloads()
    jsonl_path = tmp_path / "runs.jsonl"
    columnar_path = tmp_path / "runs.sqlite"
    _populate(RunStore(jsonl_path, durability="none"), payloads, ROWS)
    _populate(ColumnarStore(columnar_path, durability="none"), payloads, ROWS)

    def run():
        jsonl_seconds, jsonl_analysis, jsonl_doc = _timed_report(jsonl_path, RunStore)
        fast_seconds, fast_analysis, fast_doc = _timed_report(columnar_path, ColumnarStore)
        rescan_seconds, rescan_analysis, rescan_doc = _timed_report(
            columnar_path, ColumnarStore, full_rescan=True
        )
        return {
            "jsonl": (jsonl_seconds, jsonl_analysis, jsonl_doc),
            "materialized": (fast_seconds, fast_analysis, fast_doc),
            "full_rescan": (rescan_seconds, rescan_analysis, rescan_doc),
        }

    reports = run_once(benchmark, run)
    jsonl_seconds = reports["jsonl"][0]
    rows = [
        {
            "report path": name,
            "rows": ROWS,
            "seconds": round(seconds, 3),
            "rows/s": int(ROWS / seconds),
            "vs jsonl": f"{jsonl_seconds / seconds:.2f}x",
        }
        for name, (seconds, _, _) in (
            ("jsonl full rescan", reports["jsonl"]),
            ("columnar full rescan", reports["full_rescan"]),
            ("columnar materialized", reports["materialized"]),
        )
    ]
    speedup = jsonl_seconds / reports["materialized"][0]
    benchmark.extra_info["rows_in_store"] = ROWS
    benchmark.extra_info["materialized_speedup"] = round(speedup, 3)
    record("E17: report latency, materialized columnar vs JSONL rescan", rows)

    json_path = os.environ.get("REPRO_E17_WRITE_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": (
                        "E17: report latency, materialized columnar vs JSONL rescan"
                    ),
                    "min_speedup_floor": MIN_SPEEDUP,
                    "materialized_speedup": round(speedup, 3),
                    "rows": rows,
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    # Correctness before speed: all three paths agree to the byte.
    assert reports["materialized"][1] == reports["full_rescan"][1] == reports["jsonl"][1]
    assert reports["materialized"][2] == reports["full_rescan"][2] == reports["jsonl"][2]
    assert "bound-violation count: **0**" in reports["materialized"][2]
    assert (
        speedup >= MIN_SPEEDUP
    ), f"materialized report speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
