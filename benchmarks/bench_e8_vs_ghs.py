"""E8 (vs. GHS83 / classical Boruvka): O(n log n) time versus sublinear time.

Paper claim (introduction): algorithms that grow fragments without
diameter control need Theta(n) rounds per phase in the worst case even
when the hop-diameter is tiny, because MST fragments can be long paths.
The hub+path family (hop-diameter 2, MST diameter Theta(n)) exhibits
exactly that: the GHS-style baseline's rounds grow linearly in n while
the paper's algorithm grows like sqrt(n) log n.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.fitting import fit_power_law
from repro.baselines import ghs_style_mst
from repro.core.elkin_mst import compute_mst
from repro.graphs import hub_path_graph
from repro.verify.mst_checks import verify_mst_result


def test_e8_ghs_round_comparison(benchmark, record):
    sizes = (96, 192, 384)

    def run():
        rows = []
        for n in sizes:
            graph = hub_path_graph(n)
            elkin = compute_mst(graph)
            ghs = ghs_style_mst(graph)
            verify_mst_result(graph, elkin)
            verify_mst_result(graph, ghs)
            assert elkin.edges == ghs.edges
            rows.append(
                {
                    "n": n,
                    "m": graph.number_of_edges(),
                    "elkin rounds": elkin.rounds,
                    "ghs rounds": ghs.rounds,
                    "round ratio ghs/elkin": round(ghs.rounds / elkin.rounds, 2),
                    "elkin messages": elkin.messages,
                    "ghs messages": ghs.messages,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    elkin_fit = fit_power_law([r["n"] for r in rows], [r["elkin rounds"] for r in rows])
    ghs_fit = fit_power_law([r["n"] for r in rows], [r["ghs rounds"] for r in rows])
    for row in rows:
        row["elkin exp"] = round(elkin_fit.exponent, 2)
        row["ghs exp"] = round(ghs_fit.exponent, 2)
    record("E8: rounds vs the GHS-style baseline (hub+path family)", rows)
    # Shape: GHS rounds grow ~ linearly in n, the paper's grow sublinearly,
    # and the gap widens with n (crossover in the paper's favour).
    assert ghs_fit.exponent > 0.85
    assert elkin_fit.exponent < ghs_fit.exponent - 0.2
    assert rows[-1]["round ratio ghs/elkin"] > rows[0]["round ratio ghs/elkin"]
