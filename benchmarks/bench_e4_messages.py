"""E4 (Theorem 3.1, messages): O(m log n + n log n log* n) messages.

Paper claim: the message complexity is near-linear in the number of
edges.  We sweep n on sparse graphs and density on fixed n, check the
theorem bound, and fit messages against m: the exponent must be close to
1 (GKP-style algorithms would show ~1.5 on sparse graphs, see E7).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.bounds import elkin_message_bound_formula
from repro.analysis.fitting import fit_power_law
from repro.core.elkin_mst import compute_mst
from repro.graphs import random_connected_graph
from repro.verify.mst_checks import verify_mst_result


def test_e4_message_scaling(benchmark, record):
    def run():
        rows = []
        for n in (64, 128, 256, 512):
            graph = random_connected_graph(n, extra_edges=2 * n, seed=130 + n)
            result = compute_mst(graph)
            verify_mst_result(graph, result)
            bound = elkin_message_bound_formula(n, graph.number_of_edges())
            rows.append(
                {
                    "sweep": "n",
                    "n": n,
                    "m": graph.number_of_edges(),
                    "messages": result.messages,
                    "message bound": round(bound),
                    "ratio": round(result.messages / bound, 3),
                }
            )
        for extra in (128, 512, 2048):
            graph = random_connected_graph(128, extra_edges=extra, seed=139)
            result = compute_mst(graph)
            verify_mst_result(graph, result)
            bound = elkin_message_bound_formula(128, graph.number_of_edges())
            rows.append(
                {
                    "sweep": "density",
                    "n": 128,
                    "m": graph.number_of_edges(),
                    "messages": result.messages,
                    "message bound": round(bound),
                    "ratio": round(result.messages / bound, 3),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    n_rows = [row for row in rows if row["sweep"] == "n"]
    fit = fit_power_law([row["m"] for row in n_rows], [row["messages"] for row in n_rows])
    for row in rows:
        row["fit vs m"] = round(fit.exponent, 2)
    record("E4: message scaling (Theorem 3.1)", rows)
    assert all(row["ratio"] <= 1.0 for row in rows)
    # Near-linear in m: the apparent exponent includes the log n factor
    # (m log n fitted as a pure power law over this range reads ~1.2-1.3),
    # but it stays clearly below the 1.5 of an n^{3/2}-message algorithm.
    assert fit.exponent < 1.4
