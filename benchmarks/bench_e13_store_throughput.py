"""E13 (engineering): group-commit run-store throughput.

The original run store paid one ``flush()`` + ``os.fsync()`` syscall
pair per appended record -- fine for 16-cell smoke sweeps, a hot-path
tax for 362-cell zoo campaigns and beyond.  Store v2 group-commits:
one write and one fsync per batch.  This benchmark appends the same
realistic run records through both durability levels and asserts the
batched path clears a >=5x throughput floor, then proves the speed
costs nothing in correctness: an interrupted batch-durability sweep
resumes exactly (only the uncommitted tail re-runs) and its final rows
are byte-identical to the per-record-fsync mode.
"""

from __future__ import annotations

import json
import os

from conftest import run_once

from repro.campaign import Campaign, execute_campaign, graph_spec_for, run_spec, RunStore

#: Hard floor for the batch-vs-record append-throughput ratio.  The 5x
#: target (the tentpole acceptance bar) holds comfortably on local
#: disks; exotic filesystems where fsync is free can override it
#: (the measured ratio is always recorded in extra_info either way).
MIN_SPEEDUP = float(os.environ.get("REPRO_E13_MIN_SPEEDUP", "5.0"))
RECORDS = int(os.environ.get("REPRO_E13_RECORDS", "1500"))


def _sample_record():
    """One realistic (spec, row, result, provenance) record to append.

    Telemetry is disabled, as throughput-minded sweeps run: the record
    is then dominated by the result/row payload every cell must carry,
    not by per-phase diagnostics.
    """
    spec = graph_spec_for("random_connected", 16, seed=0)
    from repro.campaign.spec import RunSpec

    spec = RunSpec(graph=spec, algorithm="elkin", collect_telemetry=False)
    row, result = run_spec(spec)
    return spec, row, result.to_json_dict(), {"executor": "bench", "verified": True}


def _append_all(store, payload, count):
    import time

    spec, row, result_json, provenance = payload
    start = time.perf_counter()
    for _ in range(count):
        store.record_run(spec, row, result_json, provenance)
    store.close()
    return time.perf_counter() - start


def test_e13_store_append_throughput(benchmark, record, tmp_path):
    payload = _sample_record()

    def run():
        rows = []
        seconds = {}
        for durability in ("record", "batch"):
            store = RunStore(
                tmp_path / f"{durability}-store", durability=durability, batch_size=256
            )
            seconds[durability] = _append_all(store, payload, RECORDS)
            rows.append(
                {
                    "durability": durability,
                    "records": RECORDS,
                    "fsyncs": store.stats["fsyncs"],
                    "seconds": round(seconds[durability], 3),
                    "records/s": round(RECORDS / seconds[durability], 1),
                }
            )
        return rows, seconds

    rows, seconds = run_once(benchmark, run)

    speedup = seconds["record"] / seconds["batch"]
    for row in rows:
        row["speedup"] = round(speedup, 2)
    benchmark.extra_info["records"] = RECORDS
    benchmark.extra_info["batch_speedup"] = round(speedup, 3)
    record("E13: run-store append throughput (batch vs per-record fsync)", rows)

    # Both stores hold the identical logical state after reload.
    assert len(RunStore(tmp_path / "record-store")) == len(RunStore(tmp_path / "batch-store"))
    assert (
        speedup >= MIN_SPEEDUP
    ), f"group-commit speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"


def test_e13_interrupted_batch_sweep_resumes_byte_identical(tmp_path):
    """Resume correctness at equal speed: the other half of the bar.

    A batch-durability sweep interrupted mid-campaign (simulated by the
    torn tail a crash leaves) must, on resume, re-run only the
    incomplete cells -- and the final store must be row-for-row
    byte-identical to a per-record-fsync (v1-mode) execution of the
    same campaign.
    """
    campaign = Campaign.from_grid(
        "e13-resume",
        [graph_spec_for("random_connected", 16), graph_spec_for("grid", 16)],
        algorithms=("elkin", "ghs"),
        seeds=(0,),
    )
    # Reference: the old per-record behaviour, single file.
    reference = RunStore(tmp_path / "v1.jsonl", durability="record", batch_size=1)
    execute_campaign(campaign, store=reference)
    reference.close()

    # Interrupted batched run: half the campaign lands, plus a torn line.
    batched_path = tmp_path / "v2-store"
    half = Campaign("half", campaign.specs[: len(campaign.specs) // 2])
    store = RunStore(batched_path, durability="batch")
    execute_campaign(half, store=store)
    store.close()
    shard = sorted(batched_path.glob("shard-*.jsonl"))[-1]
    with shard.open("a", encoding="utf-8") as handle:
        handle.write('{"kind": "run", "key": "torn')  # crash mid-write

    resumed_store = RunStore(batched_path, durability="batch")
    assert resumed_store.stats["recovered_lines"] == 1
    resumed = execute_campaign(campaign, store=resumed_store)
    resumed_store.close()
    assert resumed.reused == len(half)
    assert resumed.executed == len(campaign) - len(half)

    # Byte-identity: every record of the resumed v2 store round-trips to
    # exactly the bytes the v1 per-record store holds for that cell.
    v1, v2 = RunStore(tmp_path / "v1.jsonl"), RunStore(batched_path)
    for key in campaign.run_keys():
        assert json.dumps(v1.get_row(key), sort_keys=True) == json.dumps(
            v2.get_row(key), sort_keys=True
        )
        assert v1.get_result(key).to_json_dict() == v2.get_result(key).to_json_dict()
    print(
        f"\n== E13: interrupted batch resume == re-ran {resumed.executed} of "
        f"{len(campaign)} cells; rows byte-identical to per-record mode"
    )
