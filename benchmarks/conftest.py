"""Shared helpers for the benchmark harness.

Every benchmark runs a full simulated execution exactly once
(``benchmark.pedantic(..., rounds=1, iterations=1)``): the quantity of
interest is not wall-clock time but the simulator's round and message
counters, which are deterministic.  Results are attached to
``benchmark.extra_info`` so ``pytest-benchmark``'s report carries the
reproduction data, and each benchmark also prints an ASCII table that can
be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Allow running the benchmarks from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.exists() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest  # noqa: E402

from repro.analysis.tables import format_table  # noqa: E402


def engine_name():
    """Simulation kernel the benchmarks run on (``REPRO_ENGINE`` env var).

    Both engines report identical round/message counters (see
    ``tests/test_engine_equivalence.py``), so the reproduction numbers
    do not depend on this choice -- only the wall-clock does.
    """
    return os.environ.get("REPRO_ENGINE", "reference")


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def record_rows(benchmark, title, rows, columns=None):
    """Attach rows to the benchmark report and print them as a table."""
    benchmark.extra_info["experiment"] = title
    benchmark.extra_info["rows"] = rows
    print(f"\n== {title} ==")
    print(format_table(rows, columns))


@pytest.fixture
def record(benchmark):
    """Convenience fixture: ``record(title, rows)``."""

    def _record(title, rows, columns=None):
        record_rows(benchmark, title, rows, columns)

    return _record
