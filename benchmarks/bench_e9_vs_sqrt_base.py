"""E9 (Section 1.2): second-phase messages -- sqrt(n) base forest versus k = D.

Paper claim: when D >> sqrt(n), running the Boruvka-over-BFS phase on top
of a (sqrt(n), sqrt(n)) base forest (the PRS16 strategy without its
neighbourhood-cover machinery) upcasts Theta(sqrt(n)) items over a
depth-D tree per phase, i.e. Theta(D sqrt(n)) messages per phase; using a
(n/D, O(D)) base forest instead makes the same stage cost O(n) per phase.
We measure exactly that stage on high-diameter graphs.
"""

from __future__ import annotations

from conftest import run_once

from repro.baselines import prs_style_mst
from repro.core.elkin_mst import compute_mst
from repro.graphs import graph_summary, lollipop_graph, path_graph
from repro.verify.mst_checks import verify_mst_result


def _second_phase_messages(result):
    stages = result.details["stage_costs"]
    return stages["boruvka"]["messages"] + stages["intervals_and_registration"]["messages"]


def test_e9_second_phase_messages(benchmark, record):
    instances = [
        ("path n=256", path_graph(256, seed=171)),
        ("path n=400", path_graph(400, seed=172)),
        ("lollipop 12+300", lollipop_graph(12, 300, seed=173)),
    ]

    def run():
        rows = []
        for label, graph in instances:
            summary = graph_summary(graph)
            elkin = compute_mst(graph)
            prs = prs_style_mst(graph)
            verify_mst_result(graph, elkin)
            verify_mst_result(graph, prs)
            rows.append(
                {
                    "graph": label,
                    "n": summary.n,
                    "D": summary.hop_diameter,
                    "elkin k": elkin.details["k"],
                    "prs k": prs.details["forced_k"],
                    "elkin 2nd-phase msgs": _second_phase_messages(elkin),
                    "prs 2nd-phase msgs": _second_phase_messages(prs),
                    "elkin total msgs": elkin.messages,
                    "prs total msgs": prs.messages,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    for row in rows:
        row["2nd-phase ratio"] = round(
            row["prs 2nd-phase msgs"] / max(1, row["elkin 2nd-phase msgs"]), 2
        )
    record("E9: second-phase messages, sqrt(n) base forest vs k = D", rows)
    # The paper's k = D choice wins the second phase on every
    # high-diameter instance, by a factor that grows with D sqrt(n) / n.
    assert all(row["prs 2nd-phase msgs"] > row["elkin 2nd-phase msgs"] for row in rows)
    assert rows[1]["2nd-phase ratio"] >= rows[0]["2nd-phase ratio"] * 0.8
