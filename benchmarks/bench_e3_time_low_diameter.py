"""E3 (Theorem 3.1, time): O((D + sqrt(n)) log n) rounds on low-diameter graphs.

Paper claim: on graphs with small hop-diameter the running time is
sublinear in n -- it scales like sqrt(n) log n.  We sweep n on sparse
random connected graphs (D = O(log n)), check the theorem bound for every
instance, and fit the measured power law: the exponent must be well below
1 (a linear-time algorithm would show exponent ~1).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.bounds import elkin_time_bound_formula
from repro.analysis.fitting import fit_power_law
from repro.core.elkin_mst import compute_mst
from repro.graphs import graph_summary, random_connected_graph
from repro.verify.mst_checks import verify_mst_result


def test_e3_round_scaling(benchmark, record):
    sizes = (64, 128, 256, 512)

    def run():
        rows = []
        for n in sizes:
            graph = random_connected_graph(n, seed=120 + n)
            summary = graph_summary(graph)
            result = compute_mst(graph)
            verify_mst_result(graph, result)
            bound = elkin_time_bound_formula(n, summary.hop_diameter)
            rows.append(
                {
                    "n": n,
                    "m": summary.m,
                    "D": summary.hop_diameter,
                    "k": result.details["k"],
                    "rounds": result.rounds,
                    "round bound": round(bound),
                    "ratio": round(result.rounds / bound, 3),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    fit = fit_power_law([row["n"] for row in rows], [row["rounds"] for row in rows])
    for row in rows:
        row["fitted exponent"] = round(fit.exponent, 2)
    record("E3: round scaling on low-diameter graphs (Theorem 3.1)", rows)
    assert all(row["ratio"] <= 1.0 for row in rows)
    # sqrt(n) log n shape: the fitted exponent stays clearly sublinear.
    assert fit.exponent < 0.95
